//! Candidate layouts and object routing (paper §4.3.4 and §4.7).
//!
//! A [`Layout`] maps *group instances* (replicated core groups) onto
//! cores. It also answers, for both the scheduling simulator and the real
//! runtime, the operational question: *where does an object go next?*
//!
//! - On **allocation**, the object is delivered to one of the destination
//!   group's instances: round-robin across copies, or by tag hash when the
//!   consuming task constrains all parameters to share a tag.
//! - On **transition**, the object stays on its home instance whenever a
//!   next task lives there (data locality); otherwise it transfers to the
//!   instance of the first task whose guard its new state satisfies.
//! - With no enabled task, the object leaves dispatch (dead state).

use crate::groups::{GroupGraph, GroupId};
use crate::transforms::Replication;
use bamboo_analysis::cstg::enabled_params;
use bamboo_lang::ids::{AllocSiteId, ClassId, TaskId};
use bamboo_lang::spec::{FlagSet, ProgramSpec};
use bamboo_machine::CoreId;
use std::collections::HashMap;
use std::fmt;

/// Identifies one group instance within a layout.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct InstanceId(pub u32);

impl InstanceId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

/// One replicated copy of a group, pinned to a core.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GroupInstance {
    /// The group this instance copies.
    pub group: GroupId,
    /// Copy number within the group (0-based).
    pub copy: u32,
    /// The core hosting the instance.
    pub core: CoreId,
}

/// A candidate implementation: group instances mapped to cores.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Layout {
    /// Number of cores in the target machine.
    pub core_count: usize,
    /// The instances, indexed by [`InstanceId`]. Instances of a group are
    /// contiguous and ordered by copy number.
    pub instances: Vec<GroupInstance>,
    /// Instances per group (indexed by [`GroupId`]).
    group_instances: Vec<Vec<InstanceId>>,
}

impl Layout {
    /// Builds a layout from per-group core assignments.
    ///
    /// `cores[g]` lists the core of each copy of group `g` (its length
    /// must equal the replication count).
    ///
    /// # Panics
    ///
    /// Panics if a core index is out of range or the shape mismatches
    /// `replication`.
    pub fn new(
        graph: &GroupGraph,
        replication: &Replication,
        core_count: usize,
        cores: &[Vec<CoreId>],
    ) -> Self {
        assert_eq!(cores.len(), graph.groups.len(), "one core list per group");
        let mut instances = Vec::new();
        let mut group_instances = vec![Vec::new(); graph.groups.len()];
        for (g, list) in cores.iter().enumerate() {
            assert_eq!(
                list.len(),
                replication.copies[g],
                "copy count mismatch for group {g}"
            );
            for (copy, &core) in list.iter().enumerate() {
                assert!(core.index() < core_count, "core out of range");
                let id = InstanceId(instances.len() as u32);
                instances.push(GroupInstance {
                    group: GroupId(g as u32),
                    copy: copy as u32,
                    core,
                });
                group_instances[g].push(id);
            }
        }
        Layout {
            core_count,
            instances,
            group_instances,
        }
    }

    /// The trivial single-core layout (everything on core 0).
    pub fn single_core(graph: &GroupGraph) -> Self {
        let repl = Replication::serial(graph);
        let cores: Vec<Vec<CoreId>> = graph.groups.iter().map(|_| vec![CoreId::new(0)]).collect();
        Layout::new(graph, &repl, 1, &cores)
    }

    /// The core of `instance`.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range.
    pub fn core_of(&self, instance: InstanceId) -> CoreId {
        self.instances[instance.index()].core
    }

    /// The instances of `group`.
    pub fn instances_of(&self, group: GroupId) -> &[InstanceId] {
        &self.group_instances[group.index()]
    }

    /// The instances hosted on `core`.
    pub fn instances_on(&self, core: CoreId) -> Vec<InstanceId> {
        self.instances
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.core == core)
            .map(|(i, _)| InstanceId(i as u32))
            .collect()
    }

    /// Number of distinct cores actually used.
    pub fn cores_used(&self) -> usize {
        let mut used: Vec<CoreId> = self.instances.iter().map(|i| i.core).collect();
        used.sort();
        used.dedup();
        used.len()
    }

    /// A canonical signature for isomorphism comparison: the multiset of
    /// per-core contents, where each instance is identified by its group's
    /// origin. Two layouts with equal signatures are core-renamings of
    /// each other (up to replica exchange).
    pub fn signature(&self, graph: &GroupGraph) -> Vec<Vec<u32>> {
        let mut per_core: HashMap<CoreId, Vec<u32>> = HashMap::new();
        for inst in &self.instances {
            per_core
                .entry(inst.core)
                .or_default()
                .push(graph.groups[inst.group.index()].origin);
        }
        let mut sig: Vec<Vec<u32>> = per_core
            .into_values()
            .map(|mut v| {
                v.sort_unstable();
                v
            })
            .collect();
        sig.sort();
        sig
    }

    /// A stable 64-bit fingerprint of [`Self::signature`].
    ///
    /// Computed with FNV-1a over the canonical signature (inner lists are
    /// length-prefixed, so distinct signatures hash distinct byte
    /// streams), making it reproducible across runs and platforms. Two
    /// layouts have equal fingerprints exactly when their signatures are
    /// equal, up to 64-bit hash collisions. The DSA optimizer keys both
    /// its duplicate-candidate set and its memoized simulation cache on
    /// this value — it is an order of magnitude cheaper than
    /// materializing the signature's debug string.
    pub fn fingerprint(&self, graph: &GroupGraph) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(FNV_PRIME)
        }
        let mut h = FNV_OFFSET;
        for core in self.signature(graph) {
            h = eat(h, core.len() as u64);
            for origin in core {
                h = eat(h, u64::from(origin));
            }
        }
        h
    }

    /// Renders the layout as a per-core table (the shape of the paper's
    /// Figure 4).
    pub fn describe(&self, spec: &ProgramSpec, graph: &GroupGraph) -> String {
        let mut out = String::new();
        for core in 0..self.core_count {
            let core = CoreId::new(core);
            let insts = self.instances_on(core);
            if insts.is_empty() {
                continue;
            }
            out.push_str(&format!("{core}:\n"));
            for inst in insts {
                let gi = &self.instances[inst.index()];
                let group = &graph.groups[gi.group.index()];
                let tasks: Vec<&str> = group
                    .tasks
                    .iter()
                    .map(|t| spec.task(*t).name.as_str())
                    .collect();
                out.push_str(&format!(
                    "  {} = {}[copy {}] tasks=[{}]\n",
                    inst,
                    gi.group,
                    gi.copy,
                    tasks.join(",")
                ));
            }
        }
        out
    }
}

/// Where an object goes after a state transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteDecision {
    /// Stays on its home instance.
    Stay,
    /// Transfers to another instance.
    Move(InstanceId),
    /// No task can ever consume it: leaves dispatch.
    Dead,
}

/// Stateful router: layout plus round-robin distribution counters.
///
/// Both the scheduling simulator and the runtime create one router per
/// execution so their distribution decisions match.
#[derive(Clone, Debug)]
pub struct Router {
    /// Round-robin counters keyed by (sending instance, allocation site).
    site_rr: HashMap<(InstanceId, TaskId, AllocSiteId), usize>,
    /// Round-robin counters keyed by (home instance, destination task).
    flow_rr: HashMap<(InstanceId, TaskId), usize>,
    /// Memoized `(class, flags) → enabled tasks` — the runtime-side
    /// materialization of the dispatch tables the static analysis
    /// produces (paper §4.7; see `bamboo_analysis::DispatchTable` for the
    /// fully static form).
    dispatch_memo: HashMap<(ClassId, u64), Vec<(TaskId, bamboo_lang::ids::ParamIdx)>>,
}

impl Router {
    /// Creates a router with fresh counters.
    pub fn new() -> Self {
        Router {
            site_rr: HashMap::new(),
            flow_rr: HashMap::new(),
            dispatch_memo: HashMap::new(),
        }
    }

    /// Memoized [`enabled_params`].
    fn enabled(
        &mut self,
        spec: &ProgramSpec,
        class: ClassId,
        flags: FlagSet,
    ) -> &[(TaskId, bamboo_lang::ids::ParamIdx)] {
        self.dispatch_memo
            .entry((class, flags.bits()))
            .or_insert_with(|| enabled_params(spec, class, flags))
    }

    /// Routes a newly allocated object to a destination instance.
    ///
    /// `from` is the instance whose task allocated the object;
    /// `tag_hash`, when present, selects a replica deterministically so
    /// that same-tagged objects land together.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no new-edge for `(from.group, task, site)`
    /// — the layout and spec disagree.
    #[allow(clippy::too_many_arguments)]
    pub fn route_new(
        &mut self,
        spec: &ProgramSpec,
        graph: &GroupGraph,
        layout: &Layout,
        from: InstanceId,
        task: TaskId,
        site: AllocSiteId,
        tag_hash: Option<u64>,
    ) -> InstanceId {
        let from_group = layout.instances[from.index()].group;
        let dest_group = graph
            .new_edges
            .iter()
            .find(|e| e.from == from_group && e.task == task && e.site.site == site)
            .map(|e| e.to)
            .unwrap_or_else(|| {
                // Fallback: any group holding the destination state class;
                // happens only for layouts built from hand-made graphs.
                let class = spec.task(task).alloc_sites[site.index()].class;
                graph
                    .groups
                    .iter()
                    .position(|g| g.classes.contains(&class))
                    .map(|i| GroupId(i as u32))
                    .expect("destination group exists")
            });
        // Deliver to the group that will *consume* the object first. The
        // destination-class group is right when one of its tasks matches
        // the initial state (the data-parallel case); otherwise the first
        // enabled task's group hosts the consumer (e.g. a multi-parameter
        // reduction task living with its first parameter's class).
        let tspec = spec.task(task);
        let site_spec = &tspec.alloc_sites[site.index()];
        let initial_flags = site_spec.initial_flag_set();
        let enabled = enabled_params(spec, site_spec.class, initial_flags);
        let consumer_in_dest = enabled
            .iter()
            .any(|(t, _)| graph.groups[dest_group.index()].has_task(*t));
        let target_group = if consumer_in_dest || enabled.is_empty() {
            dest_group
        } else {
            enabled
                .iter()
                .find_map(|(t, _)| graph.group_of_task(*t))
                .unwrap_or(dest_group)
        };
        let candidates = layout.instances_of(target_group);
        assert!(!candidates.is_empty(), "destination group has no instance");
        let pick = match tag_hash {
            Some(h) => (h as usize) % candidates.len(),
            None => {
                let counter = self.site_rr.entry((from, task, site)).or_insert(0);
                let pick = *counter % candidates.len();
                *counter += 1;
                pick
            }
        };
        candidates[pick]
    }

    /// Routes an object after a transition to `flags`.
    #[allow(clippy::too_many_arguments)]
    pub fn route_transition(
        &mut self,
        spec: &ProgramSpec,
        graph: &GroupGraph,
        layout: &Layout,
        home: InstanceId,
        class: ClassId,
        flags: FlagSet,
        tag_hash: Option<u64>,
    ) -> RouteDecision {
        let enabled = self.enabled(spec, class, flags).to_vec();
        if enabled.is_empty() {
            return RouteDecision::Dead;
        }
        let home_group = layout.instances[home.index()].group;
        // Data locality: prefer a consuming task on the home instance.
        if enabled
            .iter()
            .any(|(t, _)| graph.groups[home_group.index()].has_task(*t))
        {
            return RouteDecision::Stay;
        }
        // Otherwise transfer to the first enabled task that is deployed
        // somewhere.
        for (task, _) in &enabled {
            let Some(task_group) = graph.group_of_task(*task) else {
                continue;
            };
            let candidates = layout.instances_of(task_group);
            if candidates.is_empty() {
                continue;
            }
            let pick = match tag_hash {
                Some(h) => (h as usize) % candidates.len(),
                None => {
                    let counter = self.flow_rr.entry((home, *task)).or_insert(0);
                    let pick = *counter % candidates.len();
                    *counter += 1;
                    pick
                }
            };
            return RouteDecision::Move(candidates[pick]);
        }
        RouteDecision::Dead
    }
}

impl Default for Router {
    fn default() -> Self {
        Router::new()
    }
}

/// One instance's routing state, detached for a hot migration: the
/// round-robin counters keyed by that instance. Produced by
/// [`Router::extract_instance`], re-attached with
/// [`Router::absorb_instance`] on the destination stripe, so the
/// per-(instance, task) distribution sequences continue exactly where
/// they left off — a relayout must not reset round-robin fairness.
/// The dispatch memo is deliberately not carried: it is a pure cache
/// keyed by `(class, flags)` and rebuilds identically anywhere.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterInstanceState {
    /// `(task, site) → counter` entries from [`Router::route_new`].
    site_rr: Vec<((TaskId, AllocSiteId), usize)>,
    /// `task → counter` entries from [`Router::route_transition`].
    flow_rr: Vec<(TaskId, usize)>,
}

impl RouterInstanceState {
    /// Whether the instance had accumulated any routing state.
    pub fn is_empty(&self) -> bool {
        self.site_rr.is_empty() && self.flow_rr.is_empty()
    }
}

impl Router {
    /// Removes and returns every round-robin counter keyed by
    /// `instance` (as sender/home). See [`RouterInstanceState`].
    pub fn extract_instance(&mut self, instance: InstanceId) -> RouterInstanceState {
        let mut state = RouterInstanceState::default();
        self.site_rr.retain(|&(inst, task, site), counter| {
            if inst == instance {
                state.site_rr.push(((task, site), *counter));
                false
            } else {
                true
            }
        });
        self.flow_rr.retain(|&(inst, task), counter| {
            if inst == instance {
                state.flow_rr.push((task, *counter));
                false
            } else {
                true
            }
        });
        state.site_rr.sort_unstable_by_key(|&(k, _)| k);
        state.flow_rr.sort_unstable_by_key(|&(k, _)| k);
        state
    }

    /// Installs counters extracted by [`Router::extract_instance`]
    /// under `instance` on this router. Counters the destination
    /// already holds for the instance (it hosted the instance before)
    /// are overwritten — the extracted state is the newer truth.
    pub fn absorb_instance(&mut self, instance: InstanceId, state: RouterInstanceState) {
        for ((task, site), counter) in state.site_rr {
            self.site_rr.insert((instance, task, site), counter);
        }
        for (task, counter) in state.flow_rr {
            self.flow_rr.insert((instance, task), counter);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::scc_tree_transform;
    use crate::testutil::kc_setup;
    use crate::transforms::compute_replication;

    fn quad_layout() -> (ProgramSpec, GroupGraph, Replication, Layout) {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&GroupGraph::build(&spec, &cstg, &profile));
        let repl = compute_replication(&spec, &graph, &profile, 4);
        // Figure 4: startup+merge on core 0, the four Text copies spread
        // over cores 0..3.
        let process = spec.task_by_name("processText").unwrap();
        let text_group = graph.group_of_task(process).unwrap();
        let cores: Vec<Vec<CoreId>> = graph
            .groups
            .iter()
            .enumerate()
            .map(|(g, _)| {
                if GroupId(g as u32) == text_group {
                    (0..repl.copies[g]).map(CoreId::new).collect()
                } else {
                    vec![CoreId::new(0); repl.copies[g]]
                }
            })
            .collect();
        let layout = Layout::new(&graph, &repl, 4, &cores);
        (spec, graph, repl, layout)
    }

    #[test]
    fn layout_indexes_instances() {
        let (_, graph, repl, layout) = quad_layout();
        assert_eq!(layout.instances.len(), repl.total_instances());
        assert_eq!(layout.cores_used(), 4);
        for g in 0..graph.groups.len() {
            assert_eq!(layout.instances_of(GroupId(g as u32)).len(), repl.copies[g]);
        }
    }

    #[test]
    fn round_robin_distributes_new_objects() {
        let (spec, graph, _, layout) = quad_layout();
        let startup_task = spec.task_by_name("startup").unwrap();
        let startup_inst = layout.instances_of(graph.startup_group)[0];
        let mut router = Router::new();
        let dests: Vec<InstanceId> = (0..8)
            .map(|_| {
                router.route_new(
                    &spec,
                    &graph,
                    &layout,
                    startup_inst,
                    startup_task,
                    AllocSiteId::new(0),
                    None,
                )
            })
            .collect();
        // 4 copies: round robin with period 4.
        assert_eq!(dests[0], dests[4]);
        assert_eq!(dests[1], dests[5]);
        let mut unique = dests[..4].to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn transition_moves_text_to_merge_instance() {
        let (spec, graph, _, layout) = quad_layout();
        let text = spec.class_by_name("Text").unwrap();
        let text_class = spec.class(text);
        let submit = text_class.flag_by_name("submit").unwrap();
        let merge = spec.task_by_name("mergeIntermediateResult").unwrap();
        let merge_inst = layout.instances_of(graph.group_of_task(merge).unwrap())[0];
        // A Text object on a non-merge core transitions to submit.
        let process = spec.task_by_name("processText").unwrap();
        let text_insts = layout.instances_of(graph.group_of_task(process).unwrap());
        let away = text_insts
            .iter()
            .copied()
            .find(|i| layout.core_of(*i) != layout.core_of(merge_inst))
            .unwrap();
        let mut router = Router::new();
        let decision = router.route_transition(
            &spec,
            &graph,
            &layout,
            away,
            text,
            FlagSet::new().with(submit, true),
            None,
        );
        assert_eq!(decision, RouteDecision::Move(merge_inst));
    }

    #[test]
    fn transition_with_no_consumer_is_dead() {
        let (spec, graph, _, layout) = quad_layout();
        let text = spec.class_by_name("Text").unwrap();
        let inst = layout.instances_of(graph.startup_group)[0];
        let mut router = Router::new();
        let decision =
            router.route_transition(&spec, &graph, &layout, inst, text, FlagSet::EMPTY, None);
        assert_eq!(decision, RouteDecision::Dead);
    }

    #[test]
    fn object_in_home_group_state_stays() {
        let (spec, graph, _, layout) = quad_layout();
        let text = spec.class_by_name("Text").unwrap();
        let process_flag = spec.class(text).flag_by_name("process").unwrap();
        let process = spec.task_by_name("processText").unwrap();
        let inst = layout.instances_of(graph.group_of_task(process).unwrap())[1];
        let mut router = Router::new();
        let decision = router.route_transition(
            &spec,
            &graph,
            &layout,
            inst,
            text,
            FlagSet::new().with(process_flag, true),
            None,
        );
        assert_eq!(decision, RouteDecision::Stay);
    }

    #[test]
    fn signature_is_core_rename_invariant() {
        let (_, graph, repl, _) = quad_layout();
        let mk = |perm: [usize; 4]| {
            let cores: Vec<Vec<CoreId>> = graph
                .groups
                .iter()
                .enumerate()
                .map(|(g, _)| {
                    (0..repl.copies[g])
                        .map(|c| CoreId::new(perm[c % 4]))
                        .collect()
                })
                .collect();
            Layout::new(&graph, &repl, 4, &cores)
        };
        let a = mk([0, 1, 2, 3]);
        let b = mk([3, 2, 1, 0]);
        assert_eq!(a.signature(&graph), b.signature(&graph));
    }

    #[test]
    fn fingerprint_matches_signature_equality_on_mutated_layouts() {
        use crate::critpath::MoveProposal;
        let (_, graph, _, base) = quad_layout();
        // Every single-instance move of the base layout, plus the base
        // itself: a mix of signature-equal pairs (core renamings, replica
        // exchanges) and genuinely different placements.
        let mut layouts = vec![base.clone()];
        for inst in 1..base.instances.len() {
            for core in 0..base.core_count {
                layouts.push(crate::critpath::apply_move(
                    &base,
                    MoveProposal {
                        instance: InstanceId(inst as u32),
                        to_core: CoreId::new(core),
                    },
                ));
            }
        }
        let mut sig_equal_pairs = 0;
        for a in &layouts {
            for b in &layouts {
                let sigs_equal = a.signature(&graph) == b.signature(&graph);
                sig_equal_pairs += usize::from(sigs_equal && !std::ptr::eq(a, b));
                assert_eq!(
                    a.fingerprint(&graph) == b.fingerprint(&graph),
                    sigs_equal,
                    "fingerprint equality must coincide with signature equality",
                );
            }
        }
        // The sweep must actually exercise both directions.
        assert!(
            sig_equal_pairs > 0,
            "no signature-equal pair among mutations"
        );
    }

    #[test]
    fn describe_lists_cores_and_tasks() {
        let (spec, graph, _, layout) = quad_layout();
        let text = layout.describe(&spec, &graph);
        assert!(text.contains("core#0"));
        assert!(text.contains("processText"));
    }

    #[test]
    fn single_core_layout_uses_one_core() {
        let (_, graph, _, _) = quad_layout();
        let layout = Layout::single_core(&graph);
        assert_eq!(layout.cores_used(), 1);
    }
}
