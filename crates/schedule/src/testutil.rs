//! Shared fixtures for this crate's unit tests.

use bamboo_analysis::astg::DependenceAnalysis;
use bamboo_analysis::cstg::Cstg;
use bamboo_lang::compile_source;
use bamboo_lang::ids::{AllocSiteId, ExitId};
use bamboo_lang::spec::ProgramSpec;
use bamboo_profile::{Profile, ProfileCollector};

/// The keyword-counting example (paper §2) with a synthetic profile
/// mirroring Figure 3: startup creates 4 Text objects and 1 Results
/// object; `processText` takes 1000 cycles; `mergeIntermediateResult`
/// takes 300 cycles with a 75%/25% exit split.
pub fn kc_setup() -> (ProgramSpec, Cstg, Profile) {
    let spec = compile_source(
        "kc",
        r#"
        class StartupObject { flag initialstate; }
        class Text { flag process; flag submit; }
        class Results { flag finished; }
        task startup(StartupObject s in initialstate) {
            Text tp = new Text(){ process := true };
            Results rp = new Results(){ finished := false };
            taskexit(s: initialstate := false);
        }
        task processText(Text tp in process) {
            taskexit(tp: process := false, submit := true);
        }
        task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
            if (1 < 2) { taskexit(rp: finished := true; tp: submit := false); }
            taskexit(tp: submit := false);
        }
        "#,
    )
    .unwrap()
    .spec;
    let analysis = DependenceAnalysis::run(&spec);
    let cstg = Cstg::build(&spec, &analysis);
    let mut c = ProfileCollector::new(&spec, "original");
    let startup = spec.task_by_name("startup").unwrap();
    let process = spec.task_by_name("processText").unwrap();
    let merge = spec.task_by_name("mergeIntermediateResult").unwrap();
    c.record(
        startup,
        ExitId::new(0),
        300,
        &[(AllocSiteId::new(0), 4), (AllocSiteId::new(1), 1)],
    );
    for _ in 0..4 {
        c.record(process, ExitId::new(0), 1000, &[]);
    }
    for _ in 0..3 {
        c.record(merge, ExitId::new(1), 300, &[]);
    }
    c.record(merge, ExitId::new(0), 300, &[]);
    (spec, cstg, c.finish())
}

use crate::groups::GroupGraph;
use crate::layout::Layout;
use crate::transforms::Replication;
use bamboo_machine::CoreId;

/// A small layout over the keyword-count group graph with everything on
/// core 0 of a `core_count`-core machine (serial replication).
pub fn tiny_two_group_layout(core_count: usize) -> (GroupGraph, Replication, Layout) {
    let (spec, cstg, profile) = kc_setup();
    let graph = GroupGraph::build(&spec, &cstg, &profile);
    let repl = Replication::serial(&graph);
    let cores: Vec<Vec<CoreId>> = graph.groups.iter().map(|_| vec![CoreId::new(0)]).collect();
    let layout = Layout::new(&graph, &repl, core_count, &cores);
    (graph, repl, layout)
}
