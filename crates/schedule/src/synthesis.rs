//! Top-level implementation synthesis (paper §4).
//!
//! Chains the whole pipeline: group-graph construction → SCC tree
//! preprocessing → parallelization transforms → random candidate mapping
//! generation → directed-simulated-annealing optimization. The result is
//! an optimized [`Layout`] plus the artifacts downstream consumers (the
//! runtime's executors, the experiment harness) need.

use crate::dsa::{optimize, DsaOptions, DsaStats};
use crate::groups::GroupGraph;
use crate::layout::Layout;
use crate::mapping::{control_spread_layout, random_layouts, spread_layout};
use crate::preprocess::scc_tree_transform;
use crate::sim::SimResult;
use crate::transforms::{compute_replication, replicable, Replication};
use bamboo_analysis::cstg::Cstg;
use bamboo_lang::spec::ProgramSpec;
use bamboo_machine::MachineDescription;
use bamboo_profile::Profile;
use rand::Rng;

/// Synthesis configuration.
#[derive(Clone, Debug)]
pub struct SynthesisOptions {
    /// Random starting layouts handed to the annealer.
    pub initial_candidates: usize,
    /// Annealer configuration.
    pub dsa: DsaOptions,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions { initial_candidates: 8, dsa: DsaOptions::default() }
    }
}

/// Everything the synthesizer produced.
#[derive(Clone, Debug)]
pub struct SynthesisResult {
    /// The preprocessed group graph the layout refers to.
    pub graph: GroupGraph,
    /// Replication factors applied.
    pub replication: Replication,
    /// The winning layout.
    pub layout: Layout,
    /// Its simulated performance.
    pub estimate: SimResult,
    /// Search statistics.
    pub stats: DsaStats,
}

/// Runs the full synthesis pipeline for `machine`.
///
/// Two replication variants are searched when the program has a serial
/// (non-replicable) working group: the full variant replicates consumers
/// up to the core count, while the *reserved* variant caps replication at
/// `cores - 1`, leaving a dedicated core for the serial group — the shape
/// behind the paper's pipelined MonteCarlo layout. The annealer runs on
/// each variant and the better result wins.
pub fn synthesize<R: Rng>(
    spec: &ProgramSpec,
    cstg: &Cstg,
    profile: &Profile,
    machine: &MachineDescription,
    opts: &SynthesisOptions,
    rng: &mut R,
) -> SynthesisResult {
    let graph = scc_tree_transform(&GroupGraph::build(spec, cstg, profile));
    let cores = machine.core_count();
    let full = compute_replication(spec, &graph, profile, cores);

    let mut variants = vec![full.clone()];
    let has_serial_worker = (0..graph.groups.len()).any(|g| {
        let gid = crate::groups::GroupId(g as u32);
        gid != graph.startup_group
            && !graph.groups[g].tasks.is_empty()
            && !replicable(spec, &graph, gid)
    });
    if cores > 1 && has_serial_worker && full.copies.iter().any(|&c| c > cores - 1) {
        let reserved = Replication {
            copies: full.copies.iter().map(|&c| c.min(cores - 1)).collect(),
        };
        variants.push(reserved);
    }

    let mut best: Option<SynthesisResult> = None;
    for replication in variants {
        let mut initial =
            random_layouts(&graph, &replication, cores, opts.initial_candidates.max(1), rng);
        // Seed the annealer with the canonical data-parallel layouts too.
        initial.push(spread_layout(&graph, &replication, cores));
        initial.push(control_spread_layout(&graph, &replication, cores));
        let (layout, estimate, stats) =
            optimize(spec, &graph, profile, machine, initial, &opts.dsa, rng);
        let candidate = SynthesisResult {
            graph: graph.clone(),
            replication,
            layout,
            estimate,
            stats,
        };
        let better = match &best {
            Some(b) => candidate.estimate.makespan < b.estimate.makespan,
            None => true,
        };
        if better {
            best = Some(candidate);
        }
    }
    let mut result = best.expect("at least one variant searched");
    result.stats.simulations = result.stats.simulations.max(1);
    result
}

/// Builds the trivial single-core plan (profiling bootstrap and the
/// 1-core Bamboo configuration): base groups, no replication, everything
/// on core 0.
pub fn single_core_plan(spec: &ProgramSpec, cstg: &Cstg, profile: &Profile) -> (GroupGraph, Layout) {
    let graph = GroupGraph::build(spec, cstg, profile);
    let layout = Layout::single_core(&graph);
    (graph, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimOptions};
    use crate::testutil::kc_setup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthesis_beats_single_core() {
        let (spec, cstg, profile) = kc_setup();
        let machine = MachineDescription::quad();
        let mut rng = StdRng::seed_from_u64(2024);
        let result =
            synthesize(&spec, &cstg, &profile, &machine, &SynthesisOptions::default(), &mut rng);
        let (graph1, layout1) = single_core_plan(&spec, &cstg, &profile);
        let single = simulate(
            &spec,
            &graph1,
            &layout1,
            &profile,
            &machine,
            &SimOptions::default(),
        );
        assert!(result.estimate.completed);
        assert!(
            result.estimate.makespan < single.makespan,
            "synthesized {} !< single-core {}",
            result.estimate.makespan,
            single.makespan
        );
    }

    #[test]
    fn synthesis_is_reproducible_with_seed() {
        let (spec, cstg, profile) = kc_setup();
        let machine = MachineDescription::quad();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            synthesize(&spec, &cstg, &profile, &machine, &SynthesisOptions::default(), &mut rng)
                .estimate
                .makespan
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn single_core_plan_uses_one_core() {
        let (spec, cstg, profile) = kc_setup();
        let (_, layout) = single_core_plan(&spec, &cstg, &profile);
        assert_eq!(layout.cores_used(), 1);
    }
}
