//! Top-level implementation synthesis (paper §4).
//!
//! Chains the whole pipeline: group-graph construction → SCC tree
//! preprocessing → parallelization transforms → random candidate mapping
//! generation → directed-simulated-annealing optimization. The result is
//! an optimized [`Layout`] plus the artifacts downstream consumers (the
//! runtime's executors, the experiment harness) need.

use crate::dsa::{optimize, worker_threads, DsaOptions, DsaStats};
use crate::groups::GroupGraph;
use crate::layout::Layout;
use crate::mapping::{control_spread_layout, random_layouts, spread_layout};
use crate::preprocess::scc_tree_transform;
use crate::sim::SimResult;
use crate::transforms::{compute_replication, replicable, Replication};
use bamboo_analysis::cstg::Cstg;
use bamboo_lang::spec::ProgramSpec;
use bamboo_machine::MachineDescription;
use bamboo_profile::Profile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesis configuration.
#[derive(Clone, Debug)]
pub struct SynthesisOptions {
    /// Random starting layouts handed to the annealer.
    pub initial_candidates: usize,
    /// Worker threads for the whole synthesis pipeline: the annealer's
    /// candidate evaluations fan out over this many threads
    /// (overriding [`DsaOptions::threads`]), and replication variants
    /// anneal concurrently when more than one is searched. `0` uses
    /// every available core; `1` runs fully serially. The synthesized
    /// layout, estimate, and statistics are bit-identical at any
    /// setting.
    pub threads: usize,
    /// Annealer configuration.
    pub dsa: DsaOptions,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            initial_candidates: 8,
            threads: 0,
            dsa: DsaOptions::default(),
        }
    }
}

impl SynthesisOptions {
    /// Returns the options with the pipeline thread count set.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Everything the synthesizer produced.
#[derive(Clone, Debug)]
pub struct SynthesisResult {
    /// The preprocessed group graph the layout refers to.
    pub graph: GroupGraph,
    /// Replication factors applied.
    pub replication: Replication,
    /// The winning layout.
    pub layout: Layout,
    /// Its simulated performance.
    pub estimate: SimResult,
    /// Search statistics.
    pub stats: DsaStats,
}

/// Runs the full synthesis pipeline for `machine`.
///
/// Two replication variants are searched when the program has a serial
/// (non-replicable) working group: the full variant replicates consumers
/// up to the core count, while the *reserved* variant caps replication at
/// `cores - 1`, leaving a dedicated core for the serial group — the shape
/// behind the paper's pipelined MonteCarlo layout. Each variant anneals
/// with its own RNG seeded from `rng` (drawn up front, in variant
/// order), which makes the variants independent: they run concurrently
/// when [`SynthesisOptions::threads`] permits, and the result is
/// bit-identical to the serial schedule either way. The better variant
/// wins (ties break toward the full variant); its statistics absorb the
/// losing variants' volume counters via [`DsaStats::merge_counters`], so
/// `stats.simulations` reports the whole search's work while the
/// trajectory stays the winner's.
pub fn synthesize<R: Rng>(
    spec: &ProgramSpec,
    cstg: &Cstg,
    profile: &Profile,
    machine: &MachineDescription,
    opts: &SynthesisOptions,
    rng: &mut R,
) -> SynthesisResult {
    let graph = scc_tree_transform(&GroupGraph::build(spec, cstg, profile));
    let cores = machine.core_count();
    let full = compute_replication(spec, &graph, profile, cores);

    let mut variants = vec![full.clone()];
    let has_serial_worker = (0..graph.groups.len()).any(|g| {
        let gid = crate::groups::GroupId(g as u32);
        gid != graph.startup_group
            && !graph.groups[g].tasks.is_empty()
            && !replicable(spec, &graph, gid)
    });
    if cores > 1 && has_serial_worker && full.copies.iter().any(|&c| c > cores - 1) {
        let reserved = Replication {
            copies: full.copies.iter().map(|&c| c.min(cores - 1)).collect(),
        };
        variants.push(reserved);
    }

    // Independent per-variant RNGs, seeded from the caller's stream in
    // variant order — the only `rng` consumption in this function, so
    // the caller's stream advances identically however the variants are
    // scheduled.
    let seeds: Vec<u64> = variants.iter().map(|_| rng.next_u64()).collect();
    let dsa_opts = DsaOptions {
        threads: opts.threads,
        ..opts.dsa.clone()
    };
    let run_variant = |replication: Replication, seed: u64| -> SynthesisResult {
        let mut vrng = StdRng::seed_from_u64(seed);
        let mut initial = random_layouts(
            &graph,
            &replication,
            cores,
            opts.initial_candidates.max(1),
            &mut vrng,
        );
        // Seed the annealer with the canonical data-parallel layouts too.
        initial.push(spread_layout(&graph, &replication, cores));
        initial.push(control_spread_layout(&graph, &replication, cores));
        let (layout, estimate, stats) = optimize(
            spec, &graph, profile, machine, initial, &dsa_opts, &mut vrng,
        );
        SynthesisResult {
            graph: graph.clone(),
            replication,
            layout,
            estimate,
            stats,
        }
    };

    let searched: Vec<SynthesisResult> = if worker_threads(opts.threads) > 1 && variants.len() > 1 {
        let run_variant = &run_variant;
        std::thread::scope(|scope| {
            let handles: Vec<_> = variants
                .into_iter()
                .zip(seeds)
                .map(|(replication, seed)| scope.spawn(move || run_variant(replication, seed)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("variant search panicked"))
                .collect()
        })
    } else {
        variants
            .into_iter()
            .zip(seeds)
            .map(|(replication, seed)| run_variant(replication, seed))
            .collect()
    };

    let winner = searched
        .iter()
        .enumerate()
        .min_by_key(|(i, r)| (r.estimate.makespan, *i))
        .map(|(i, _)| i)
        .expect("at least one variant searched");
    let mut merged_stats = searched[winner].stats.clone();
    for (i, other) in searched.iter().enumerate() {
        if i != winner {
            merged_stats.merge_counters(&other.stats);
        }
    }
    let mut result = searched
        .into_iter()
        .nth(winner)
        .expect("winner index in range");
    result.stats = merged_stats;
    result
}

/// Builds the trivial single-core plan (profiling bootstrap and the
/// 1-core Bamboo configuration): base groups, no replication, everything
/// on core 0.
pub fn single_core_plan(
    spec: &ProgramSpec,
    cstg: &Cstg,
    profile: &Profile,
) -> (GroupGraph, Layout) {
    let graph = GroupGraph::build(spec, cstg, profile);
    let layout = Layout::single_core(&graph);
    (graph, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimOptions};
    use crate::testutil::kc_setup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthesis_beats_single_core() {
        let (spec, cstg, profile) = kc_setup();
        let machine = MachineDescription::quad();
        let mut rng = StdRng::seed_from_u64(2024);
        let result = synthesize(
            &spec,
            &cstg,
            &profile,
            &machine,
            &SynthesisOptions::default(),
            &mut rng,
        );
        let (graph1, layout1) = single_core_plan(&spec, &cstg, &profile);
        let single = simulate(
            &spec,
            &graph1,
            &layout1,
            &profile,
            &machine,
            &SimOptions::default(),
        );
        assert!(result.estimate.completed);
        assert!(
            result.estimate.makespan < single.makespan,
            "synthesized {} !< single-core {}",
            result.estimate.makespan,
            single.makespan
        );
    }

    #[test]
    fn synthesis_is_reproducible_with_seed() {
        let (spec, cstg, profile) = kc_setup();
        let machine = MachineDescription::quad();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            synthesize(
                &spec,
                &cstg,
                &profile,
                &machine,
                &SynthesisOptions::default(),
                &mut rng,
            )
            .estimate
            .makespan
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn synthesis_is_thread_count_invariant() {
        let (spec, cstg, profile) = kc_setup();
        let machine = MachineDescription::quad();
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(31);
            let opts = SynthesisOptions::default().with_threads(threads);
            synthesize(&spec, &cstg, &profile, &machine, &opts, &mut rng)
        };
        let serial = run(1);
        for threads in [4, 8] {
            let parallel = run(threads);
            assert_eq!(
                parallel.layout, serial.layout,
                "{threads} threads: layout diverged"
            );
            assert_eq!(parallel.estimate.makespan, serial.estimate.makespan);
            assert_eq!(
                parallel.stats, serial.stats,
                "{threads} threads: stats diverged"
            );
            assert_eq!(parallel.replication, serial.replication);
        }
    }

    #[test]
    fn synthesis_stats_merge_is_explicit_not_clamped() {
        let (spec, cstg, profile) = kc_setup();
        let machine = MachineDescription::quad();
        let mut rng = StdRng::seed_from_u64(2024);
        let result = synthesize(
            &spec,
            &cstg,
            &profile,
            &machine,
            &SynthesisOptions::default(),
            &mut rng,
        );
        let stats = &result.stats;
        // Volume counters are real sums over every variant searched, not
        // a clamped placeholder.
        assert!(stats.simulations > 1);
        assert_eq!(stats.simulations, stats.cache_misses);
        assert_eq!(
            stats.simulations + stats.cache_hits,
            stats.candidates_evaluated
        );
        assert!(stats.iterations >= stats.trajectory.len());
        // The trajectory stays the winning variant's: non-increasing and
        // ending at the reported best makespan.
        assert!(stats.trajectory.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(stats.trajectory.last().copied(), Some(stats.best_makespan));
        assert_eq!(stats.best_makespan, result.estimate.makespan);
    }

    #[test]
    fn single_core_plan_uses_one_core() {
        let (spec, cstg, profile) = kc_setup();
        let (_, layout) = single_core_plan(&spec, &cstg, &profile);
        assert_eq!(layout.cores_used(), 1);
    }
}
