//! Core groups and the group graph (paper §4.3.1).
//!
//! A *core group* is a set of tasks that will be mapped onto the same core
//! together with the abstract object states those tasks process. The base
//! grouping implements the **data locality rule**: all states an object
//! moves through during its lifetime (one connected component of its
//! class's ASTG) belong to one group, and each task lives in the group of
//! its first parameter, so by default an object is processed entirely on
//! the core it was delivered to.
//!
//! Groups are connected by *new-object edges*: group A containing task T →
//! group B whose states T's allocation sites produce, annotated with the
//! profiled mean number of objects per invocation. The preprocessing and
//! parallelization transforms ([`crate::preprocess`],
//! [`crate::transforms`]) rewrite this graph.

use bamboo_analysis::cstg::{Cstg, NodeId};
use bamboo_analysis::union_find::UnionFind;
use bamboo_lang::ids::{ClassId, TaskId};
use bamboo_lang::spec::{GlobalAllocSite, ProgramSpec};
use bamboo_profile::Profile;
use std::fmt;

/// Identifies a core group within a [`GroupGraph`].
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group#{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group#{}", self.0)
    }
}

/// One core group.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Group {
    /// Tasks executed in this group (each task lives in exactly one
    /// group).
    pub tasks: Vec<TaskId>,
    /// CSTG state nodes resident in this group.
    pub states: Vec<NodeId>,
    /// Classes of those states.
    pub classes: Vec<ClassId>,
    /// The base component this group descends from (stable across
    /// duplication; used for isomorphism reduction).
    pub origin: u32,
}

impl Group {
    /// Returns whether `task` runs in this group.
    pub fn has_task(&self, task: TaskId) -> bool {
        self.tasks.contains(&task)
    }
}

/// A new-object edge between groups.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GroupNewEdge {
    /// The group containing the creating task.
    pub from: GroupId,
    /// The group whose states the new objects enter.
    pub to: GroupId,
    /// The creating task.
    pub task: TaskId,
    /// The allocation site.
    pub site: GlobalAllocSite,
    /// Profiled mean objects per invocation of the creating task.
    pub mean_count: f64,
}

/// The group graph: core groups plus new-object edges.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GroupGraph {
    /// The groups, indexed by [`GroupId`].
    pub groups: Vec<Group>,
    /// New-object edges.
    pub new_edges: Vec<GroupNewEdge>,
    /// The group containing the startup task/state.
    pub startup_group: GroupId,
}

impl GroupGraph {
    /// Builds the base group graph from the CSTG and a profile.
    ///
    /// # Panics
    ///
    /// Panics if the CSTG does not contain the spec's startup state (it
    /// always does for analysis output).
    pub fn build(spec: &ProgramSpec, cstg: &Cstg, profile: &Profile) -> Self {
        // 1. Per-class connected components over task edges.
        let n = cstg.nodes.len();
        let mut uf = UnionFind::new(n);
        for edge in &cstg.task_edges {
            uf.union(edge.from.index(), edge.to.index());
        }
        // 2. Each task joins the components of its param-0 source states.
        for (task_id, _) in spec.tasks_enumerated() {
            let sources: Vec<usize> = cstg
                .task_edges
                .iter()
                .filter(|e| e.task == task_id && e.param.index() == 0)
                .map(|e| e.from.index())
                .collect();
            for pair in sources.windows(2) {
                uf.union(pair[0], pair[1]);
            }
        }
        // 3. Materialize groups.
        let mut group_of_node = vec![usize::MAX; n];
        let mut groups: Vec<Group> = Vec::new();
        for i in 0..n {
            let rep = uf.find(i);
            if group_of_node[rep] == usize::MAX {
                group_of_node[rep] = groups.len();
                groups.push(Group {
                    tasks: Vec::new(),
                    states: Vec::new(),
                    classes: Vec::new(),
                    origin: groups.len() as u32,
                });
            }
            let g = group_of_node[rep];
            group_of_node[i] = g;
            groups[g].states.push(NodeId(i as u32));
            let class = cstg.nodes[i].class;
            if !groups[g].classes.contains(&class) {
                groups[g].classes.push(class);
            }
        }
        // 4. Assign tasks to the group of their param-0 source states.
        for (task_id, _) in spec.tasks_enumerated() {
            let source = cstg
                .task_edges
                .iter()
                .find(|e| e.task == task_id && e.param.index() == 0)
                .map(|e| e.from.index());
            if let Some(node) = source {
                let g = group_of_node[node];
                if !groups[g].tasks.contains(&task_id) {
                    groups[g].tasks.push(task_id);
                }
            }
        }
        // 5. New-object edges with profiled means.
        let mut new_edges = Vec::new();
        for edge in &cstg.new_edges {
            let from_group = groups
                .iter()
                .position(|g| g.has_task(edge.task))
                .map(|i| GroupId(i as u32));
            let Some(from) = from_group else { continue };
            let to = GroupId(group_of_node[edge.to.index()] as u32);
            // The parallelism a site exposes is its *per-exit* mean: a
            // phase-final merge that allocates the whole next wave on a
            // rare exit exposes wave-sized parallelism even though the
            // per-invocation average is ~1.
            let tp = profile.task(edge.task);
            let mean_count = tp
                .exits
                .iter()
                .filter(|e| e.count > 0)
                .map(|e| {
                    e.site_allocs
                        .get(edge.site.site.index())
                        .copied()
                        .unwrap_or(0) as f64
                        / e.count as f64
                })
                .fold(0.0f64, f64::max)
                .max(if tp.invocations() == 0 { 1.0 } else { 0.0 });
            new_edges.push(GroupNewEdge {
                from,
                to,
                task: edge.task,
                site: edge.site,
                mean_count,
            });
        }
        // 6. Locate the startup group.
        let startup_state = cstg
            .nodes
            .iter()
            .position(|node| node.class == spec.startup.class && node.allocatable)
            .expect("startup state present in CSTG");
        let startup_group = GroupId(group_of_node[startup_state] as u32);
        GroupGraph {
            groups,
            new_edges,
            startup_group,
        }
    }

    /// Returns the group containing `task`, if the task is reachable.
    pub fn group_of_task(&self, task: TaskId) -> Option<GroupId> {
        self.groups
            .iter()
            .position(|g| g.has_task(task))
            .map(|i| GroupId(i as u32))
    }

    /// Returns the groups containing `state` (after duplication a state
    /// can live in several group copies).
    pub fn groups_of_state(&self, state: NodeId) -> Vec<GroupId> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.states.contains(&state))
            .map(|(i, _)| GroupId(i as u32))
            .collect()
    }

    /// Returns the incoming new edges of `group`.
    pub fn incoming(&self, group: GroupId) -> impl Iterator<Item = &GroupNewEdge> {
        self.new_edges
            .iter()
            .filter(move |e| e.to == group && e.from != group)
    }

    /// Renders a summary of the graph.
    pub fn summary(&self, spec: &ProgramSpec) -> String {
        let mut out = String::new();
        for (i, group) in self.groups.iter().enumerate() {
            let tasks: Vec<&str> = group
                .tasks
                .iter()
                .map(|t| spec.task(*t).name.as_str())
                .collect();
            let classes: Vec<&str> = group
                .classes
                .iter()
                .map(|c| spec.class(*c).name.as_str())
                .collect();
            out.push_str(&format!(
                "group#{i} (origin {}): tasks=[{}] classes=[{}] states={}\n",
                group.origin,
                tasks.join(","),
                classes.join(","),
                group.states.len()
            ));
        }
        for e in &self.new_edges {
            out.push_str(&format!(
                "  {} --new {} x{:.1}--> {}\n",
                e.from,
                spec.task(e.task).name,
                e.mean_count,
                e.to
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::kc_setup;

    #[test]
    fn base_grouping_matches_paper_example() {
        let (spec, cstg, profile) = kc_setup();
        let graph = GroupGraph::build(&spec, &cstg, &profile);
        // Three groups: StartupObject, Text, Results.
        assert_eq!(graph.groups.len(), 3);
        let startup_task = spec.task_by_name("startup").unwrap();
        let process = spec.task_by_name("processText").unwrap();
        let merge = spec.task_by_name("mergeIntermediateResult").unwrap();
        let g_startup = graph.group_of_task(startup_task).unwrap();
        let g_process = graph.group_of_task(process).unwrap();
        let g_merge = graph.group_of_task(merge).unwrap();
        assert_eq!(g_startup, graph.startup_group);
        assert_ne!(g_process, g_merge);
        // merge lives with Results (its param 0), not with Text.
        let results = spec.class_by_name("Results").unwrap();
        assert!(graph.groups[g_merge.index()].classes.contains(&results));
    }

    #[test]
    fn new_edge_means_come_from_profile() {
        let (spec, cstg, profile) = kc_setup();
        let graph = GroupGraph::build(&spec, &cstg, &profile);
        let startup_task = spec.task_by_name("startup").unwrap();
        let text = spec.class_by_name("Text").unwrap();
        let text_edge = graph
            .new_edges
            .iter()
            .find(|e| e.task == startup_task && graph.groups[e.to.index()].classes.contains(&text))
            .expect("edge to Text group");
        assert!((text_edge.mean_count - 4.0).abs() < 1e-9);
    }

    #[test]
    fn incoming_excludes_self_edges() {
        let (spec, cstg, profile) = kc_setup();
        let graph = GroupGraph::build(&spec, &cstg, &profile);
        // Text group has exactly one incoming edge (from startup).
        let process = spec.task_by_name("processText").unwrap();
        let g = graph.group_of_task(process).unwrap();
        assert_eq!(graph.incoming(g).count(), 1);
    }

    #[test]
    fn summary_names_tasks() {
        let (spec, cstg, profile) = kc_setup();
        let graph = GroupGraph::build(&spec, &cstg, &profile);
        let s = graph.summary(&spec);
        assert!(s.contains("processText"));
        assert!(s.contains("--new"));
    }
}
