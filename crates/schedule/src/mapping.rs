//! Mapping group instances to cores (paper §4.3.4).
//!
//! The mapping search enumerates non-isomorphic assignments of group
//! instances to cores with a backtracking algorithm. Isomorphism is
//! broken two ways: cores are interchangeable, so a fresh core may only
//! be opened in index order; and copies of the same group are
//! interchangeable, so their core indices must be non-decreasing. The
//! enumerator extends the standard algorithm with random subspace
//! skipping, so it can draw a random sample of the (often astronomically
//! large) candidate space, as the paper's synthesizer does.

use crate::groups::GroupGraph;
use crate::layout::Layout;
use crate::transforms::Replication;
use bamboo_machine::CoreId;
use rand::Rng;

/// Options for the mapping enumeration.
#[derive(Clone, Debug)]
pub struct MappingOptions {
    /// Number of cores available.
    pub core_count: usize,
    /// Stop after yielding this many layouts.
    pub limit: usize,
    /// Probability of skipping a branch of the search space (0 = full
    /// enumeration).
    pub skip_probability: f64,
}

impl Default for MappingOptions {
    fn default() -> Self {
        MappingOptions {
            core_count: 4,
            limit: 1_000_000,
            skip_probability: 0.0,
        }
    }
}

/// Enumerates candidate layouts, invoking `yield_layout` for each.
///
/// The startup group's (single) instance is pinned to core 0, matching
/// the paper's runtime-initialization convention. Returns the number of
/// layouts yielded.
pub fn enumerate_mappings<R: Rng>(
    graph: &GroupGraph,
    replication: &Replication,
    opts: &MappingOptions,
    rng: &mut R,
    mut yield_layout: impl FnMut(Layout),
) -> usize {
    // Flatten instances: (group, copy), startup first so it is pinned.
    let mut slots: Vec<(usize, usize)> = Vec::new();
    let startup = graph.startup_group.index();
    for copy in 0..replication.copies[startup] {
        slots.push((startup, copy));
    }
    for (g, &copies) in replication.copies.iter().enumerate() {
        if g == startup {
            continue;
        }
        for copy in 0..copies {
            slots.push((g, copy));
        }
    }

    let mut assignment: Vec<usize> = vec![0; slots.len()];
    let mut yielded = 0usize;
    let mut seen = std::collections::HashSet::new();
    search(
        graph,
        replication,
        opts,
        rng,
        &slots,
        &mut assignment,
        0,
        0,
        &mut yielded,
        &mut seen,
        &mut yield_layout,
    );
    yielded
}

#[allow(clippy::too_many_arguments)]
fn search<R: Rng>(
    graph: &GroupGraph,
    replication: &Replication,
    opts: &MappingOptions,
    rng: &mut R,
    slots: &[(usize, usize)],
    assignment: &mut Vec<usize>,
    pos: usize,
    max_used: usize,
    yielded: &mut usize,
    seen: &mut std::collections::HashSet<Vec<Vec<u32>>>,
    yield_layout: &mut impl FnMut(Layout),
) {
    if *yielded >= opts.limit {
        return;
    }
    if pos == slots.len() {
        let layout = build_layout(graph, replication, opts.core_count, slots, assignment);
        // Canonical core-opening order still admits replica-exchange
        // isomorphs; a signature check removes them.
        if seen.insert(layout.signature(graph)) {
            yield_layout(layout);
            *yielded += 1;
        }
        return;
    }
    let (_group, copy) = slots[pos];
    // Canonical core choices: any used core, or the next fresh one.
    let upper = (max_used + 1).min(opts.core_count);
    // Same-group copies must map to non-decreasing core indices.
    let lower = if copy > 0 { assignment[pos - 1] } else { 0 };
    // The startup instance is pinned to core 0.
    let choices: Vec<usize> = if pos == 0 {
        vec![0]
    } else {
        (lower..upper).collect()
    };
    for core in choices {
        if *yielded >= opts.limit {
            return;
        }
        if opts.skip_probability > 0.0 && rng.gen_bool(opts.skip_probability) {
            continue;
        }
        assignment[pos] = core;
        let new_max = max_used.max(core + 1);
        search(
            graph,
            replication,
            opts,
            rng,
            slots,
            assignment,
            pos + 1,
            new_max,
            yielded,
            seen,
            yield_layout,
        );
    }
}

fn build_layout(
    graph: &GroupGraph,
    replication: &Replication,
    core_count: usize,
    slots: &[(usize, usize)],
    assignment: &[usize],
) -> Layout {
    let mut cores: Vec<Vec<CoreId>> = replication
        .copies
        .iter()
        .map(|&c| vec![CoreId::new(0); c])
        .collect();
    for (i, &(group, copy)) in slots.iter().enumerate() {
        cores[group][copy] = CoreId::new(assignment[i]);
    }
    Layout::new(graph, replication, core_count, &cores)
}

/// The canonical data-parallel layout: the startup group's instance goes
/// to core 0, every other group's copies are dealt round-robin across the
/// cores (copy `c` of successive groups interleaved so replicated waves
/// spread out). This is the layout the parallelization transforms imply
/// and a natural starting candidate for the annealer.
pub fn spread_layout(graph: &GroupGraph, replication: &Replication, core_count: usize) -> Layout {
    let mut cores: Vec<Vec<CoreId>> = replication
        .copies
        .iter()
        .map(|&c| vec![CoreId::new(0); c])
        .collect();
    let mut next = 1usize.min(core_count - 1);
    for (g, list) in cores.iter_mut().enumerate() {
        if g == graph.startup_group.index() {
            continue;
        }
        for slot in list.iter_mut() {
            *slot = CoreId::new(next);
            next = (next + 1) % core_count;
        }
        // Keep canonical per-group copy ordering (non-decreasing cores).
        list.sort();
    }
    Layout::new(graph, replication, core_count, &cores)
}

/// A spread variant that dedicates core 0 to the *control* groups — the
/// startup group and every non-replicated group (serial reducers,
/// aggregators) — and deals replicated copies over the remaining cores.
/// This is the layout shape behind the paper's pipelined MonteCarlo
/// implementation: aggregation overlaps with simulation instead of
/// competing with it for a core.
pub fn control_spread_layout(
    graph: &GroupGraph,
    replication: &Replication,
    core_count: usize,
) -> Layout {
    let mut cores: Vec<Vec<CoreId>> = replication
        .copies
        .iter()
        .map(|&c| vec![CoreId::new(0); c])
        .collect();
    if core_count > 1 {
        let worker_cores = core_count - 1;
        let mut next = 0usize;
        for (g, copies) in replication.copies.iter().enumerate() {
            if *copies <= 1 {
                continue; // control groups stay on core 0
            }
            let _ = copies;
            for slot in cores[g].iter_mut() {
                *slot = CoreId::new(1 + next % worker_cores);
                next += 1;
            }
            cores[g].sort();
        }
    }
    Layout::new(graph, replication, core_count, &cores)
}

/// Draws `n` random candidate layouts (uniform-ish via random walks down
/// the canonical search tree).
pub fn random_layouts<R: Rng>(
    graph: &GroupGraph,
    replication: &Replication,
    core_count: usize,
    n: usize,
    rng: &mut R,
) -> Vec<Layout> {
    let mut slots: Vec<(usize, usize)> = Vec::new();
    let startup = graph.startup_group.index();
    for copy in 0..replication.copies[startup] {
        slots.push((startup, copy));
    }
    for (g, &copies) in replication.copies.iter().enumerate() {
        if g == startup {
            continue;
        }
        for copy in 0..copies {
            slots.push((g, copy));
        }
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut assignment = vec![0usize; slots.len()];
        let mut max_used = 1usize; // core 0 taken by startup
        for (pos, &(_, copy)) in slots.iter().enumerate() {
            if pos == 0 {
                assignment[pos] = 0;
                continue;
            }
            let lower = if copy > 0 { assignment[pos - 1] } else { 0 };
            let upper = (max_used + 1).min(core_count);
            let core = rng
                .gen_range(lower..upper.max(lower + 1))
                .min(core_count - 1);
            assignment[pos] = core;
            max_used = max_used.max(core + 1);
        }
        out.push(build_layout(
            graph,
            replication,
            core_count,
            &slots,
            &assignment,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::GroupGraph;
    use crate::preprocess::scc_tree_transform;
    use crate::testutil::kc_setup;
    use crate::transforms::compute_replication;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn setup(core_count: usize) -> (GroupGraph, Replication) {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&GroupGraph::build(&spec, &cstg, &profile));
        let repl = compute_replication(&spec, &graph, &profile, core_count);
        (graph, repl)
    }

    #[test]
    fn enumeration_yields_distinct_canonical_layouts() {
        let (graph, repl) = setup(4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sigs = HashSet::new();
        let mut count = 0;
        enumerate_mappings(
            &graph,
            &repl,
            &MappingOptions {
                core_count: 4,
                limit: 100_000,
                skip_probability: 0.0,
            },
            &mut rng,
            |layout| {
                count += 1;
                sigs.insert(format!("{:?}", layout.signature(&graph)));
            },
        );
        assert!(count > 1, "expected multiple candidates");
        // Canonical enumeration yields no duplicate signatures.
        assert_eq!(sigs.len(), count);
    }

    #[test]
    fn startup_is_pinned_to_core_zero() {
        let (graph, repl) = setup(4);
        let mut rng = StdRng::seed_from_u64(1);
        enumerate_mappings(
            &graph,
            &repl,
            &MappingOptions {
                core_count: 4,
                limit: 1000,
                skip_probability: 0.0,
            },
            &mut rng,
            |layout| {
                let inst = layout.instances_of(graph.startup_group)[0];
                assert_eq!(layout.core_of(inst).index(), 0);
            },
        );
    }

    #[test]
    fn limit_caps_enumeration() {
        let (graph, repl) = setup(4);
        let mut rng = StdRng::seed_from_u64(1);
        let n = enumerate_mappings(
            &graph,
            &repl,
            &MappingOptions {
                core_count: 4,
                limit: 3,
                skip_probability: 0.0,
            },
            &mut rng,
            |_| {},
        );
        assert_eq!(n, 3);
    }

    #[test]
    fn skipping_reduces_yield() {
        let (graph, repl) = setup(4);
        let mut rng = StdRng::seed_from_u64(7);
        let full = enumerate_mappings(
            &graph,
            &repl,
            &MappingOptions {
                core_count: 4,
                limit: 100_000,
                skip_probability: 0.0,
            },
            &mut rng,
            |_| {},
        );
        let mut rng = StdRng::seed_from_u64(7);
        let sampled = enumerate_mappings(
            &graph,
            &repl,
            &MappingOptions {
                core_count: 4,
                limit: 100_000,
                skip_probability: 0.5,
            },
            &mut rng,
            |_| {},
        );
        assert!(sampled < full, "{sampled} !< {full}");
    }

    #[test]
    fn random_layouts_are_valid_and_seeded() {
        let (graph, repl) = setup(8);
        let mut rng = StdRng::seed_from_u64(42);
        let a = random_layouts(&graph, &repl, 8, 5, &mut rng);
        let mut rng = StdRng::seed_from_u64(42);
        let b = random_layouts(&graph, &repl, 8, 5, &mut rng);
        assert_eq!(a, b);
        for layout in &a {
            assert_eq!(layout.instances.len(), repl.total_instances());
            assert!(layout.cores_used() <= 8);
        }
    }
}
