//! The high-level scheduling simulator (paper §4.4).
//!
//! Estimates how long a candidate [`Layout`] takes to execute — *without
//! running any application code*. Each simulated invocation's exit,
//! duration, and allocations come from the profile-driven
//! [`MarkovModel`]; objects are abstract (class + flag valuation + home
//! instance); inter-core deliveries pay the machine's transfer cost. The
//! simulator mirrors the runtime's dispatch rules exactly: per-instance
//! parameter sets, FIFO invocation queues per core, tag-consistent
//! pairing, and the [`Router`]'s locality-first object placement.

use crate::groups::GroupGraph;
use crate::layout::{InstanceId, Layout, RouteDecision, Router};
use crate::trace::{DataDep, ExecutionTrace, TraceTask};
use bamboo_analysis::cstg::enabled_params;
use bamboo_lang::ids::{ClassId, ParamIdx, TaskId};
use bamboo_lang::spec::{FlagSet, ProgramSpec};
use bamboo_machine::{CoreId, MachineDescription};
use bamboo_profile::{Cycles, MarkovModel, Prediction, Profile};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Simulator options.
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Stop simulating at this virtual time even if work remains (guards
    /// against non-terminating profiles).
    pub horizon: Cycles,
    /// Record a full execution trace (needed for critical-path analysis).
    pub collect_trace: bool,
    /// Cycles charged to a core per task dispatch (queue pop, parameter
    /// locking).
    pub dispatch_overhead: Cycles,
    /// Estimated object payload size in words, for transfer costs.
    pub payload_words: u64,
    /// Per-class payload overrides (falls back to `payload_words`).
    pub payload_words_per_class: std::collections::HashMap<bamboo_lang::ids::ClassId, u64>,
    /// Use the profile's recorded invocation sequence (replay mode) when
    /// available; `false` falls back to the aggregate count-matching
    /// Markov model everywhere (the Figure 9 ablation).
    pub replay: bool,
}

impl SimOptions {
    /// Payload size for `class`.
    pub fn payload_words_of(&self, class: bamboo_lang::ids::ClassId) -> u64 {
        self.payload_words_per_class
            .get(&class)
            .copied()
            .unwrap_or(self.payload_words)
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            horizon: 500_000_000_000,
            collect_trace: false,
            dispatch_overhead: 40,
            payload_words: 16,
            payload_words_per_class: std::collections::HashMap::new(),
            replay: true,
        }
    }
}

/// Result of a simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Estimated completion time (or the horizon, if incomplete).
    pub makespan: Cycles,
    /// Whether the simulated execution drained all work.
    pub completed: bool,
    /// Number of simulated invocations.
    pub invocations: usize,
    /// Fraction of used-core capacity spent executing tasks.
    pub utilization: f64,
    /// The trace, when requested.
    pub trace: Option<ExecutionTrace>,
}

/// A memoized store of simulation results keyed by layout fingerprint
/// ([`crate::layout::Layout::fingerprint`]).
///
/// [`simulate`] is a pure function of `(spec, graph, layout, profile,
/// machine, opts)`, so within one optimization run — where everything
/// but the layout is fixed — a result can be replayed for any layout
/// whose fingerprint was already simulated. The DSA optimizer uses this
/// to avoid re-simulating survivors that re-enter the candidate pool
/// across iterations.
#[derive(Clone, Debug, Default)]
pub struct SimCache {
    map: std::collections::HashMap<u64, SimResult>,
    hits: usize,
    misses: usize,
}

impl SimCache {
    /// An empty cache.
    pub fn new() -> Self {
        SimCache::default()
    }

    /// Replays the memoized result for `fingerprint`, counting a hit;
    /// `None` counts nothing (the caller simulates and [`Self::insert`]s,
    /// which counts the miss).
    pub fn lookup(&mut self, fingerprint: u64) -> Option<SimResult> {
        let found = self.map.get(&fingerprint).cloned();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Memoizes a freshly simulated result, counting a miss.
    pub fn insert(&mut self, fingerprint: u64, result: SimResult) {
        self.misses += 1;
        self.map.insert(fingerprint, result);
    }

    /// Results currently memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Results computed and inserted.
    pub fn misses(&self) -> usize {
        self.misses
    }
}

/// An abstract simulated object.
#[derive(Clone, Debug)]
struct SimObject {
    class: bamboo_lang::ids::ClassId,
    flags: FlagSet,
    home: InstanceId,
    /// Hash standing in for tag-instance identity (objects tagged together
    /// share it).
    tag_hash: Option<u64>,
    /// The invocation that last released this object (for trace edges).
    producer: Option<usize>,
    /// Arrival time at the current home core.
    arrival: Cycles,
    /// Set once the object is reserved by a pending invocation or dead.
    consumed: bool,
    /// Replayed profile record bound to this object at *release* time —
    /// the moment it entered its current `(class, flags)` state — when
    /// that state enables exactly one `(task, param 0)` dispatch entry.
    /// Release order is the serial program order the profile recorded;
    /// arrival and start order are scheduling artifacts (mesh distance
    /// reorders deliveries, queue depth delays starts), so binding the
    /// record any later hands this object's cycles to whichever
    /// invocation the simulated schedule happens to assemble first.
    pred: Option<Prediction>,
}

/// A formed invocation waiting in a core's ready queue.
#[derive(Clone, Debug)]
struct ReadyInvocation {
    task: TaskId,
    instance: InstanceId,
    objs: Vec<usize>,
    /// The invocation's profile record: the primary (param 0) object's
    /// release-time stamp when it has one (see [`SimObject::pred`]), or
    /// the task's next sequential record otherwise.
    pred: Prediction,
}

/// Runs the scheduling simulation of `layout`.
pub fn simulate(
    spec: &ProgramSpec,
    graph: &GroupGraph,
    layout: &Layout,
    profile: &Profile,
    machine: &MachineDescription,
    opts: &SimOptions,
) -> SimResult {
    Simulator::new(spec, graph, layout, profile, machine, opts).run()
}

struct Simulator<'a> {
    spec: &'a ProgramSpec,
    graph: &'a GroupGraph,
    layout: &'a Layout,
    machine: &'a MachineDescription,
    opts: &'a SimOptions,
    profile: &'a Profile,
    markov: MarkovModel<'a>,
    router: Router,
    objects: Vec<SimObject>,
    /// Param sets: per instance, per (task, param) key.
    param_sets: Vec<Vec<VecDeque<usize>>>,
    /// (task, param) keys per instance (aligned with `param_sets`).
    param_keys: Vec<Vec<(TaskId, ParamIdx)>>,
    /// FIFO ready queue per core.
    ready: Vec<VecDeque<ReadyInvocation>>,
    /// Memoized stamping decision per `(class, flags)`: the unique
    /// primary-consumer task, if any (see [`SimObject::pred`]).
    stamp_memo: HashMap<(ClassId, u64), Option<TaskId>>,
    /// Core busy state: current invocation, its prediction, and its trace
    /// record id (when tracing).
    running: Vec<Option<(ReadyInvocation, Prediction, Option<usize>)>>,
    /// Event queue keyed by (time, sequence).
    events: BinaryHeap<Reverse<(Cycles, u64, EventKey)>>,
    seq: u64,
    now: Cycles,
    next_tag_hash: u64,
    trace: Vec<TraceTask>,
    last_on_core: Vec<Option<usize>>,
    invocations: usize,
    busy: Cycles,
    makespan: Cycles,
}

/// Orderable event payload (usize indexes into side tables).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EventKey {
    Arrival(usize),
    CoreFree(u32),
}

impl<'a> Simulator<'a> {
    fn new(
        spec: &'a ProgramSpec,
        graph: &'a GroupGraph,
        layout: &'a Layout,
        profile: &'a Profile,
        machine: &'a MachineDescription,
        opts: &'a SimOptions,
    ) -> Self {
        // Precompute (task, param) slots per instance: every task of the
        // instance's group contributes one slot per parameter.
        let mut param_keys = Vec::with_capacity(layout.instances.len());
        let mut param_sets = Vec::with_capacity(layout.instances.len());
        for inst in &layout.instances {
            let group = &graph.groups[inst.group.index()];
            let mut keys = Vec::new();
            for task in &group.tasks {
                for p in 0..spec.task(*task).params.len() {
                    keys.push((*task, ParamIdx::new(p)));
                }
            }
            param_sets.push(vec![VecDeque::new(); keys.len()]);
            param_keys.push(keys);
        }
        Simulator {
            spec,
            graph,
            layout,
            machine,
            opts,
            profile,
            markov: if opts.replay {
                MarkovModel::new(profile)
            } else {
                MarkovModel::without_replay(profile)
            },
            router: Router::new(),
            objects: Vec::new(),
            param_sets,
            param_keys,
            stamp_memo: HashMap::new(),
            ready: vec![VecDeque::new(); layout.core_count],
            running: vec![None; layout.core_count],
            events: BinaryHeap::new(),
            seq: 0,
            now: 0,
            next_tag_hash: 1,
            trace: Vec::new(),
            last_on_core: vec![None; layout.core_count],
            invocations: 0,
            busy: 0,
            makespan: 0,
        }
    }

    fn push_event(&mut self, time: Cycles, key: EventKey) {
        self.seq += 1;
        self.events.push(Reverse((time, self.seq, key)));
    }

    fn run(mut self) -> SimResult {
        // Inject the startup object.
        let startup_inst = self.layout.instances_of(self.graph.startup_group)[0];
        let flags = FlagSet::new().with(self.spec.startup.flag, true);
        let obj = self.objects.len();
        self.objects.push(SimObject {
            class: self.spec.startup.class,
            flags,
            home: startup_inst,
            tag_hash: None,
            producer: None,
            arrival: 0,
            consumed: false,
            pred: None,
        });
        self.stamp(obj);
        self.push_event(0, EventKey::Arrival(obj));

        while let Some(Reverse((time, _, key))) = self.events.pop() {
            if time > self.opts.horizon {
                self.makespan = self.opts.horizon;
                return self.finish(false);
            }
            self.now = time;
            self.makespan = self.makespan.max(time);
            match key {
                EventKey::Arrival(obj) => self.handle_arrival(obj),
                EventKey::CoreFree(core) => self.handle_core_free(CoreId(core)),
            }
        }
        self.finish(true)
    }

    fn finish(self, completed: bool) -> SimResult {
        let utilization = if self.makespan == 0 {
            0.0
        } else {
            self.busy as f64 / (self.makespan as f64 * self.layout.cores_used() as f64)
        };
        SimResult {
            makespan: self.makespan,
            completed,
            invocations: self.invocations,
            utilization,
            trace: if self.opts.collect_trace {
                Some(ExecutionTrace {
                    tasks: self.trace,
                    makespan: self.makespan,
                })
            } else {
                None
            },
        }
    }

    /// Binds the next replayed profile record to `obj` at release time.
    ///
    /// An object is *released* when it enters a new `(class, flags)`
    /// state: at allocation, at startup injection, and after every
    /// parameter transition. Release order across the simulation tracks
    /// the serial program order the profile recorded (a producer's
    /// allocations are stamped in program order before any transfer
    /// latency can reorder their arrivals), so when the state enables
    /// exactly one `(task, param 0)` dispatch entry the task's next
    /// sequential record belongs to *this* object — the same
    /// data-follows-object identity the executor gets for free by
    /// running real code. Ambiguous states (several enabled entries, or
    /// a non-primary parameter) are left unstamped and fall back to
    /// formation-order prediction.
    fn stamp(&mut self, obj: usize) {
        let class = self.objects[obj].class;
        let flags = self.objects[obj].flags;
        let key = (class, flags.bits());
        let task = match self.stamp_memo.get(&key) {
            Some(t) => *t,
            None => {
                let enabled = enabled_params(self.spec, class, flags);
                let t = match enabled.as_slice() {
                    // Never-profiled tasks can't be replayed — leave
                    // their objects unstamped (formation-order fallback).
                    [(t, p)] if p.index() == 0 && self.profile.task(*t).invocations() > 0 => {
                        Some(*t)
                    }
                    _ => None,
                };
                self.stamp_memo.insert(key, t);
                t
            }
        };
        self.objects[obj].pred = task.map(|t| self.markov.predict(t));
    }

    /// Delivers an object to its home instance's parameter sets and tries
    /// to form invocations.
    fn handle_arrival(&mut self, obj: usize) {
        let home = self.objects[obj].home;
        let class = self.objects[obj].class;
        let flags = self.objects[obj].flags;
        let mut touched = false;
        for (slot, (task, param)) in self.param_keys[home.index()].iter().enumerate() {
            let pspec = &self.spec.task(*task).params[param.index()];
            if pspec.class == class && pspec.guard.eval(flags) {
                self.param_sets[home.index()][slot].push_back(obj);
                touched = true;
            }
        }
        if touched {
            self.try_form_invocations(home);
        } else {
            // No local slot matches: forward to the consuming group.
            let hash = self.objects[obj].tag_hash;
            if let RouteDecision::Move(dest) = self.router.route_transition(
                self.spec,
                self.graph,
                self.layout,
                home,
                class,
                flags,
                hash,
            ) {
                let from_core = self.layout.core_of(home);
                let to_core = self.layout.core_of(dest);
                let words = self.opts.payload_words_of(class);
                let cost = self.machine.transfer_cycles(from_core, to_core, words);
                self.objects[obj].home = dest;
                self.objects[obj].arrival = self.now + cost;
                self.push_event(self.now + cost, EventKey::Arrival(obj));
            }
        }
        let core = self.layout.core_of(home);
        self.maybe_start(core);
    }

    /// Forms as many ready invocations at `instance` as possible.
    fn try_form_invocations(&mut self, instance: InstanceId) {
        let core = self.layout.core_of(instance);
        loop {
            let mut formed = false;
            let tasks: Vec<TaskId> = {
                let group =
                    &self.graph.groups[self.layout.instances[instance.index()].group.index()];
                group.tasks.clone()
            };
            for task in tasks {
                if let Some(objs) = self.match_task(instance, task) {
                    for &o in &objs {
                        self.objects[o].consumed = true;
                    }
                    // The primary object's release-time stamp is this
                    // invocation's record; stamping guarantees a stamped
                    // object can only be consumed by the stamped task.
                    let pred = match objs.first().and_then(|&o| self.objects[o].pred.take()) {
                        Some(p) => p,
                        None => self.markov.predict(task),
                    };
                    self.ready[core.index()].push_back(ReadyInvocation {
                        task,
                        instance,
                        objs,
                        pred,
                    });
                    formed = true;
                }
            }
            if !formed {
                break;
            }
        }
    }

    /// Attempts to assemble one invocation of `task` at `instance`:
    /// a live object per parameter, tag-consistent.
    fn match_task(&mut self, instance: InstanceId, task: TaskId) -> Option<Vec<usize>> {
        let tspec = self.spec.task(task);
        let n = tspec.params.len();
        let keys = &self.param_keys[instance.index()];
        let mut chosen: Vec<usize> = Vec::with_capacity(n);
        let mut required_hash: Option<u64> = None;
        for p in 0..n {
            let slot = keys
                .iter()
                .position(|(t, pi)| *t == task && pi.index() == p)
                .expect("param slot exists");
            let set = &mut self.param_sets[instance.index()][slot];
            // Drop stale entries lazily.
            let pspec = &tspec.params[p];
            let mut found = None;
            let mut scan = 0;
            while scan < set.len() {
                let cand = set[scan];
                let o = &self.objects[cand];
                if o.consumed || !pspec.guard.eval(o.flags) || chosen.contains(&cand) {
                    if o.consumed || !pspec.guard.eval(o.flags) {
                        set.remove(scan);
                        continue;
                    }
                    scan += 1;
                    continue;
                }
                // Tag consistency across constrained parameters.
                if !pspec.tags.is_empty() {
                    match (required_hash, o.tag_hash) {
                        (_, None) => {
                            scan += 1;
                            continue;
                        }
                        (Some(h), Some(oh)) if h != oh => {
                            scan += 1;
                            continue;
                        }
                        _ => {}
                    }
                }
                found = Some((scan, cand));
                break;
            }
            match found {
                Some((idx, cand)) => {
                    set.remove(idx);
                    if !pspec.tags.is_empty() {
                        required_hash = self.objects[cand].tag_hash;
                    }
                    chosen.push(cand);
                }
                None => {
                    // Return reserved objects to their sets.
                    for (pi, o) in chosen.into_iter().enumerate() {
                        let slot = keys
                            .iter()
                            .position(|(t, q)| *t == task && q.index() == pi)
                            .expect("param slot exists");
                        self.param_sets[instance.index()][slot].push_front(o);
                    }
                    return None;
                }
            }
        }
        if chosen.is_empty() {
            return None;
        }
        Some(chosen)
    }

    /// Starts the next ready invocation on `core` if it is idle.
    fn maybe_start(&mut self, core: CoreId) {
        if self.running[core.index()].is_some() {
            return;
        }
        let Some(inv) = self.ready[core.index()].pop_front() else {
            return;
        };
        let pred = inv.pred.clone();
        let duration = pred.cycles + self.opts.dispatch_overhead;
        let start = self.now;
        let end = start + duration;
        self.busy += duration;
        self.invocations += 1;

        if self.opts.collect_trace {
            let deps = inv
                .objs
                .iter()
                .map(|&o| DataDep {
                    producer: self.objects[o].producer,
                    arrival: self.objects[o].arrival,
                })
                .collect();
            let id = self.trace.len();
            self.trace.push(TraceTask {
                id,
                task: inv.task,
                instance: inv.instance,
                core,
                start,
                end,
                deps,
                prev_on_core: self.last_on_core[core.index()],
            });
            self.last_on_core[core.index()] = Some(id);
        }

        // Completion is handled at CoreFree.
        let trace_id = if self.opts.collect_trace {
            Some(self.trace.len() - 1)
        } else {
            None
        };
        self.running[core.index()] = Some((inv, pred, trace_id));
        self.push_event(end, EventKey::CoreFree(core.0));
    }

    fn handle_core_free(&mut self, core: CoreId) {
        let (inv, pred, trace_id) = self.running[core.index()].take().expect("core was running");
        let tspec = self.spec.task(inv.task);
        let exit = tspec.exit(pred.exit);

        // Tag hash for routing: inherit the first tagged parameter's hash,
        // or mint one if the task creates tags.
        let param_hash = inv.objs.iter().find_map(|&o| self.objects[o].tag_hash);
        let minted_hash = if tspec.tag_vars.iter().any(|v| !v.from_param) {
            self.next_tag_hash += 1;
            Some(self.next_tag_hash)
        } else {
            None
        };

        // Parameter transitions: every surviving object is re-released in
        // its new flag state and re-stamped (release order, not delivery
        // order, carries the profile's serial identity).
        for (p, &obj) in inv.objs.iter().enumerate() {
            let new_flags = exit.apply_flags(ParamIdx::new(p), self.objects[obj].flags);
            self.objects[obj].flags = new_flags;
            self.objects[obj].consumed = false;
            self.objects[obj].producer = trace_id;
            let class = self.objects[obj].class;
            let hash = self.objects[obj].tag_hash;
            match self.router.route_transition(
                self.spec,
                self.graph,
                self.layout,
                self.objects[obj].home,
                class,
                new_flags,
                hash,
            ) {
                RouteDecision::Stay => {
                    self.stamp(obj);
                    self.objects[obj].arrival = self.now;
                    self.push_event(self.now, EventKey::Arrival(obj));
                }
                RouteDecision::Move(dest) => {
                    self.stamp(obj);
                    let from_core = self.layout.core_of(self.objects[obj].home);
                    let to_core = self.layout.core_of(dest);
                    let words = self.opts.payload_words_of(self.objects[obj].class);
                    let cost = self.machine.transfer_cycles(from_core, to_core, words);
                    self.objects[obj].home = dest;
                    self.objects[obj].arrival = self.now + cost;
                    self.push_event(self.now + cost, EventKey::Arrival(obj));
                }
                RouteDecision::Dead => {
                    self.objects[obj].consumed = true;
                    self.objects[obj].pred = None;
                }
            }
        }

        // Allocations.
        for (site, count) in &pred.allocs {
            let site_spec = &tspec.alloc_sites[site.index()];
            let tagged = !site_spec.bound_tags.is_empty();
            for _ in 0..*count {
                let hash = if tagged {
                    minted_hash.or(param_hash)
                } else {
                    None
                };
                let dest = self.router.route_new(
                    self.spec,
                    self.graph,
                    self.layout,
                    inv.instance,
                    inv.task,
                    *site,
                    hash,
                );
                let from_core = self.layout.core_of(inv.instance);
                let to_core = self.layout.core_of(dest);
                let words = self.opts.payload_words_of(site_spec.class);
                let cost = self.machine.transfer_cycles(from_core, to_core, words);
                let obj = self.objects.len();
                self.objects.push(SimObject {
                    class: site_spec.class,
                    flags: site_spec.initial_flag_set(),
                    home: dest,
                    tag_hash: hash,
                    producer: trace_id,
                    arrival: self.now + cost,
                    consumed: false,
                    pred: None,
                });
                self.stamp(obj);
                self.push_event(self.now + cost, EventKey::Arrival(obj));
            }
        }

        self.maybe_start(core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use crate::preprocess::scc_tree_transform;
    use crate::testutil::kc_setup;
    use crate::transforms::compute_replication;

    fn sim_kc(core_count: usize) -> (SimResult, u64) {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&GroupGraph::build(&spec, &cstg, &profile));
        let machine = MachineDescription::n_cores(core_count.max(1));
        let repl = compute_replication(&spec, &graph, &profile, core_count);
        let process = spec.task_by_name("processText").unwrap();
        let text_group = graph.group_of_task(process).unwrap();
        let cores: Vec<Vec<CoreId>> = graph
            .groups
            .iter()
            .enumerate()
            .map(|(g, _)| {
                (0..repl.copies[g])
                    .map(|c| {
                        if crate::groups::GroupId(g as u32) == text_group {
                            CoreId::new(c % core_count)
                        } else {
                            CoreId::new(0)
                        }
                    })
                    .collect()
            })
            .collect();
        let layout = Layout::new(&graph, &repl, core_count, &cores);
        let opts = SimOptions {
            collect_trace: true,
            ..SimOptions::default()
        };
        let result = simulate(&spec, &graph, &layout, &profile, &machine, &opts);
        (result, profile.total_cycles)
    }

    #[test]
    fn single_core_simulation_completes_all_invocations() {
        let (result, _) = sim_kc(1);
        assert!(result.completed);
        // 1 startup + 4 process + 4 merge = 9.
        assert_eq!(result.invocations, 9);
    }

    #[test]
    fn multi_core_is_faster_than_single_core() {
        let (one, _) = sim_kc(1);
        let (four, _) = sim_kc(4);
        assert!(four.completed);
        assert!(
            four.makespan < one.makespan,
            "{} !< {}",
            four.makespan,
            one.makespan
        );
    }

    #[test]
    fn single_core_makespan_close_to_serial_cycles() {
        let (result, serial) = sim_kc(1);
        // Makespan = serial work + dispatch overheads; within 20%.
        assert!(result.makespan >= serial);
        assert!((result.makespan as f64) < serial as f64 * 1.2);
    }

    #[test]
    fn trace_is_consistent() {
        let (result, _) = sim_kc(4);
        let trace = result.trace.expect("trace requested");
        assert_eq!(trace.tasks.len(), result.invocations);
        for t in &trace.tasks {
            assert!(t.start <= t.end);
            assert!(t.start >= t.data_ready());
            if let Some(prev) = t.prev_on_core {
                assert!(trace.tasks[prev].end <= t.start);
                assert_eq!(trace.tasks[prev].core, t.core);
            }
        }
        assert_eq!(trace.makespan, result.makespan);
    }

    #[test]
    fn simulation_is_deterministic() {
        let (a, _) = sim_kc(4);
        let (b, _) = sim_kc(4);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.invocations, b.invocations);
    }
}
