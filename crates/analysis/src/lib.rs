#![warn(missing_docs)]

//! # bamboo-analysis
//!
//! Static analyses of Bamboo programs (Zhou & Demsky, PLDI 2010, §4.1-§4.2):
//!
//! - [`astg`] — *dependence analysis*: per-class abstract state transition
//!   graphs over guard-relevant flags and 1-limited tag counts;
//! - [`cstg`] — the *combined state transition graph* characterizing the
//!   whole application, consumed by the implementation synthesizer;
//! - [`disjoint`] — *disjointness analysis* over task/method IR, producing
//!   the per-task [`disjoint::LockPlan`] that guarantees transactional
//!   task semantics with plain parameter-object locks;
//! - [`union_find`] — the disjoint-set structure shared by the analysis
//!   and the runtime's lock-class merging.
//!
//! # Examples
//!
//! ```
//! use bamboo_analysis::{astg::DependenceAnalysis, cstg::Cstg, disjoint::DisjointnessAnalysis};
//!
//! let compiled = bamboo_lang::compile_source(
//!     "demo",
//!     r#"
//!     class StartupObject { flag initialstate; }
//!     class Work { flag ready; }
//!     task startup(StartupObject s in initialstate) {
//!         Work w = new Work(){ ready := true };
//!         taskexit(s: initialstate := false);
//!     }
//!     task run(Work w in ready) { taskexit(w: ready := false); }
//!     "#,
//! )?;
//! let dep = DependenceAnalysis::run(&compiled.spec);
//! let cstg = Cstg::build(&compiled.spec, &dep);
//! let locks = DisjointnessAnalysis::run(&compiled.spec, &compiled.ir);
//! assert_eq!(cstg.nodes.len(), 4);
//! assert!(!locks.lock_plans.iter().any(|p| p.has_sharing()));
//! # Ok::<(), bamboo_lang::span::CompileError>(())
//! ```

pub mod astg;
pub mod cstg;
pub mod disjoint;
pub mod dispatch;
pub mod union_find;

pub use astg::{AbstractState, Astg, DependenceAnalysis, StateIdx, TagCount};
pub use cstg::{enabled_params, Cstg, NewEdge, NodeId, TaskEdge};
pub use disjoint::{DisjointnessAnalysis, LockPlan};
pub use dispatch::DispatchTable;
pub use union_find::UnionFind;
