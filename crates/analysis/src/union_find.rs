//! Small union-find (disjoint-set) structure used by the disjointness
//! analysis and the runtime's shared-lock assignment.

/// A union-find over `0..len` with path compression and union by rank.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates a structure with `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
        }
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Adds a new singleton element, returning its index.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id as u32);
        self.rank.push(0);
        id
    }

    /// Returns the representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Returns the sets as sorted groups of sorted members (normal form
    /// for comparisons and display).
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for x in 0..self.len() {
            let root = self.find(x);
            map.entry(root).or_default().push(x);
        }
        map.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 2));
        assert!(uf.union(2, 4));
        assert!(!uf.union(0, 4));
        assert!(uf.same(0, 4));
        assert!(!uf.same(1, 4));
        assert_eq!(uf.groups(), vec![vec![0, 2, 4], vec![1], vec![3]]);
    }

    #[test]
    fn push_extends() {
        let mut uf = UnionFind::new(1);
        let id = uf.push();
        assert_eq!(id, 1);
        uf.union(0, 1);
        assert!(uf.same(0, 1));
    }

    #[test]
    fn path_compression_preserves_sets() {
        let mut uf = UnionFind::new(64);
        for i in 1..64 {
            uf.union(i - 1, i);
        }
        for i in 0..64 {
            assert!(uf.same(0, i));
        }
    }
}
