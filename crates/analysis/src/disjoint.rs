//! Disjointness analysis (paper §4.2).
//!
//! Determines, for each task, whether executing the task may *introduce
//! sharing* between the heap regions rooted at two different parameter
//! objects — i.e. store a reference that makes some object reachable from
//! both. Bamboo's transactional task semantics lock only the parameter
//! objects, which is sufficient exactly while parameter regions stay
//! disjoint; when a task may merge two regions, the compiler directs the
//! runtime to *share a lock* between those parameter objects
//! ([`LockPlan`]).
//!
//! The implementation is a flow-insensitive abstract interpretation over
//! *region tokens*: each task parameter roots a region; allocations create
//! fresh regions; storing a reference into a region merges the regions
//! involved (union-find). Method calls are handled with summaries —
//! which of `{this, args}` a method may merge, and which regions its
//! return value may alias — computed to a global fixpoint so recursion is
//! sound.

use crate::union_find::UnionFind;
use bamboo_lang::ids::{ParamIdx, TaskId};
use bamboo_lang::ir::{Builtin, IrExpr, IrPlace, IrProgram, IrStmt};
use bamboo_lang::spec::ProgramSpec;
use std::collections::BTreeSet;
use std::fmt;

/// Sentinel summary index meaning "a region allocated inside the callee".
const FRESH: usize = usize::MAX;

/// A set of region tokens (kept sorted for determinism).
type TokenSet = BTreeSet<usize>;

/// How a task's parameters must be locked.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LockPlan {
    /// Partition of the task's parameters: parameters in the same group
    /// may come to share heap, so the runtime merges their objects' lock
    /// classes.
    pub groups: Vec<Vec<ParamIdx>>,
}

impl LockPlan {
    /// The plan for a task whose parameters stay disjoint: every parameter
    /// in its own group.
    pub fn all_disjoint(n_params: usize) -> Self {
        LockPlan {
            groups: (0..n_params).map(|i| vec![ParamIdx::new(i)]).collect(),
        }
    }

    /// Returns whether any group holds more than one parameter.
    pub fn has_sharing(&self) -> bool {
        self.groups.iter().any(|g| g.len() > 1)
    }
}

impl fmt::Display for LockPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let groups: Vec<String> = self
            .groups
            .iter()
            .map(|g| {
                let members: Vec<String> = g.iter().map(|p| p.to_string()).collect();
                format!("{{{}}}", members.join(","))
            })
            .collect();
        write!(f, "{}", groups.join(" "))
    }
}

/// Whole-program disjointness results.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DisjointnessAnalysis {
    /// One lock plan per task, indexed by [`TaskId`].
    pub lock_plans: Vec<LockPlan>,
}

impl DisjointnessAnalysis {
    /// Runs the analysis over a compiled DSL program.
    pub fn run(spec: &ProgramSpec, ir: &IrProgram) -> Self {
        let summaries = compute_method_summaries(ir);
        let lock_plans = spec
            .tasks_enumerated()
            .map(|(task_id, task)| analyze_task(ir, &summaries, task_id, task.params.len()))
            .collect();
        DisjointnessAnalysis { lock_plans }
    }

    /// The trivial result for native programs (no IR to analyze): every
    /// parameter disjoint. Native builders that share heap between
    /// parameters must override with [`DisjointnessAnalysis::with_shared`].
    pub fn all_disjoint(spec: &ProgramSpec) -> Self {
        DisjointnessAnalysis {
            lock_plans: spec
                .tasks
                .iter()
                .map(|t| LockPlan::all_disjoint(t.params.len()))
                .collect(),
        }
    }

    /// Returns a copy in which `task`'s listed parameters share one lock
    /// group.
    pub fn with_shared(mut self, task: TaskId, shared: &[ParamIdx]) -> Self {
        let plan = &mut self.lock_plans[task.index()];
        let mut group: Vec<ParamIdx> = Vec::new();
        plan.groups.retain(|g| {
            if g.iter().any(|p| shared.contains(p)) {
                group.extend(g.iter().copied());
                false
            } else {
                true
            }
        });
        group.sort();
        plan.groups.push(group);
        plan.groups.sort();
        self
    }

    /// Returns the lock plan of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn lock_plan(&self, task: TaskId) -> &LockPlan {
        &self.lock_plans[task.index()]
    }
}

/// Summary of a method's heap effects in terms of its `this` (index 0) and
/// arguments (indices 1..=n).
#[derive(Clone, Debug, Default, PartialEq)]
struct MethodSummary {
    /// Pairs of formal indices the method may merge into one region.
    merges: Vec<(usize, usize)>,
    /// Formal indices (or [`FRESH`]) the return value may alias.
    ret: BTreeSet<usize>,
}

/// Abstract state while analyzing one body.
struct AbsState {
    uf: UnionFind,
    locals: Vec<TokenSet>,
    ret: TokenSet,
    changed: bool,
}

impl AbsState {
    fn new(n_tokens: usize, n_slots: usize) -> Self {
        AbsState {
            uf: UnionFind::new(n_tokens),
            locals: vec![TokenSet::new(); n_slots],
            ret: TokenSet::new(),
            changed: false,
        }
    }

    fn rep_set(&mut self, tokens: &TokenSet) -> TokenSet {
        tokens.iter().map(|&t| self.uf.find(t)).collect()
    }

    fn merge_all(&mut self, tokens: &TokenSet) {
        let mut iter = tokens.iter();
        if let Some(&first) = iter.next() {
            for &t in iter {
                if self.uf.union(first, t) {
                    self.changed = true;
                }
            }
        }
    }

    fn extend_local(&mut self, slot: u32, tokens: TokenSet) {
        let entry = &mut self.locals[slot as usize];
        for t in tokens {
            if entry.insert(t) {
                self.changed = true;
            }
        }
    }
}

/// Context shared by intraprocedural walks.
struct Walker<'a> {
    #[allow(dead_code)]
    ir: &'a IrProgram,
    summaries: &'a [Vec<MethodSummary>],
    /// Next fresh token to hand out (monotonic across fixpoint iterations
    /// for determinism we reset per iteration).
    fresh_base: usize,
    next_fresh: usize,
}

impl<'a> Walker<'a> {
    fn fresh(&mut self, state: &mut AbsState) -> usize {
        let token = self.next_fresh;
        self.next_fresh += 1;
        while state.uf.len() <= token {
            state.uf.push();
        }
        token
    }

    fn walk_block(&mut self, stmts: &[IrStmt], state: &mut AbsState) {
        for stmt in stmts {
            self.walk_stmt(stmt, state);
        }
    }

    fn walk_stmt(&mut self, stmt: &IrStmt, state: &mut AbsState) {
        match stmt {
            IrStmt::Assign { target, value } => {
                let v = self.eval(value, state);
                match target {
                    IrPlace::Local(slot) => state.extend_local(*slot, v),
                    IrPlace::Field { obj, .. } | IrPlace::Index { arr: obj, .. } => {
                        let base = self.eval(obj, state);
                        if !v.is_empty() {
                            let mut all = base;
                            all.extend(v);
                            state.merge_all(&all);
                        }
                    }
                }
            }
            IrStmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.eval(cond, state);
                self.walk_block(then_blk, state);
                self.walk_block(else_blk, state);
            }
            IrStmt::While { cond, body } => {
                self.eval(cond, state);
                self.walk_block(body, state);
            }
            IrStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.walk_block(init, state);
                if let Some(c) = cond {
                    self.eval(c, state);
                }
                self.walk_block(body, state);
                self.walk_block(step, state);
            }
            IrStmt::Return(Some(e)) => {
                let v = self.eval(e, state);
                for t in v {
                    if state.ret.insert(t) {
                        state.changed = true;
                    }
                }
            }
            IrStmt::Return(None)
            | IrStmt::Break
            | IrStmt::Continue
            | IrStmt::TaskExit(_)
            | IrStmt::NewTag { .. } => {}
            IrStmt::Expr(e) => {
                self.eval(e, state);
            }
        }
    }

    fn eval(&mut self, expr: &IrExpr, state: &mut AbsState) -> TokenSet {
        match expr {
            IrExpr::ConstInt(_)
            | IrExpr::ConstFloat(_)
            | IrExpr::ConstBool(_)
            | IrExpr::ConstStr(_)
            | IrExpr::Null => TokenSet::new(),
            IrExpr::Local(slot) => state.locals[*slot as usize].clone(),
            IrExpr::Field { obj, .. } => {
                // Everything reachable from obj's region is in the region.
                let base = self.eval(obj, state);
                state.rep_set(&base)
            }
            IrExpr::Index { arr, idx } => {
                self.eval(idx, state);
                let base = self.eval(arr, state);
                state.rep_set(&base)
            }
            IrExpr::CallMethod {
                obj,
                class,
                method,
                args,
            } => {
                let mut actuals: Vec<TokenSet> = Vec::with_capacity(args.len() + 1);
                actuals.push(self.eval(obj, state));
                for a in args {
                    actuals.push(self.eval(a, state));
                }
                let summary = self.summaries[class.index()][*method as usize].clone();
                // Apply merges.
                for (i, j) in &summary.merges {
                    let mut all: TokenSet = actuals[*i].clone();
                    all.extend(actuals[*j].iter().copied());
                    state.merge_all(&all);
                }
                // Return aliases.
                let mut ret = TokenSet::new();
                for idx in &summary.ret {
                    if *idx == FRESH {
                        ret.insert(self.fresh(state));
                    } else {
                        ret.extend(actuals[*idx].iter().copied());
                    }
                }
                state.rep_set(&ret)
            }
            IrExpr::CallBuiltin { builtin, args } => {
                for a in args {
                    self.eval(a, state);
                }
                match builtin {
                    Builtin::Split => [self.fresh(state)].into_iter().collect(),
                    _ => TokenSet::new(),
                }
            }
            IrExpr::New { args, .. } => {
                let token = self.fresh(state);
                // Constructor effects: conservatively, arguments stored
                // into the fresh object join its region.
                let mut all: TokenSet = [token].into_iter().collect();
                for a in args {
                    all.extend(self.eval(a, state));
                }
                state.merge_all(&all);
                let singleton: TokenSet = [token].into_iter().collect();
                state.rep_set(&singleton)
            }
            IrExpr::NewArray { len, .. } => {
                self.eval(len, state);
                [self.fresh(state)].into_iter().collect()
            }
            IrExpr::Unary { expr, .. } => {
                self.eval(expr, state);
                TokenSet::new()
            }
            IrExpr::Binary { lhs, rhs, .. } => {
                self.eval(lhs, state);
                self.eval(rhs, state);
                TokenSet::new()
            }
        }
    }
}

/// Computes method summaries to a global fixpoint.
fn compute_method_summaries(ir: &IrProgram) -> Vec<Vec<MethodSummary>> {
    let mut summaries: Vec<Vec<MethodSummary>> = ir
        .classes
        .iter()
        .map(|c| vec![MethodSummary::default(); c.methods.len()])
        .collect();
    // Iterate until stable (bounded; summaries grow monotonically).
    for _ in 0..24 {
        let mut any_changed = false;
        for (ci, class) in ir.classes.iter().enumerate() {
            for (mi, method) in class.methods.iter().enumerate() {
                let n_formals = method.n_params + 1; // this + args
                let mut state = AbsState::new(n_formals, method.body.n_slots);
                for i in 0..n_formals {
                    state.locals[i] = [i].into_iter().collect();
                }
                let mut walker = Walker {
                    ir,
                    summaries: &summaries,
                    fresh_base: n_formals,
                    next_fresh: n_formals,
                };
                // Intraprocedural fixpoint (flow-insensitive; loops feed
                // locals back).
                loop {
                    state.changed = false;
                    walker.next_fresh = walker.fresh_base;
                    walker.walk_block(&method.body.stmts, &mut state);
                    if !state.changed {
                        break;
                    }
                }
                // Extract the new summary.
                let mut merges = Vec::new();
                for i in 0..n_formals {
                    for j in (i + 1)..n_formals {
                        if state.uf.same(i, j) {
                            merges.push((i, j));
                        }
                    }
                }
                let mut ret = BTreeSet::new();
                let ret_reps = state.rep_set(&state.ret.clone());
                for i in 0..n_formals {
                    if ret_reps.contains(&state.uf.find(i)) {
                        ret.insert(i);
                    }
                }
                // Any returned token whose class holds no formal is fresh.
                let formal_reps: BTreeSet<usize> =
                    (0..n_formals).map(|i| state.uf.find(i)).collect();
                if ret_reps.iter().any(|r| !formal_reps.contains(r)) {
                    ret.insert(FRESH);
                }
                let new = MethodSummary { merges, ret };
                if summaries[ci][mi] != new {
                    summaries[ci][mi] = new;
                    any_changed = true;
                }
            }
        }
        if !any_changed {
            break;
        }
    }
    summaries
}

/// Analyzes one task body and derives its lock plan.
fn analyze_task(
    ir: &IrProgram,
    summaries: &[Vec<MethodSummary>],
    task: TaskId,
    n_params: usize,
) -> LockPlan {
    let body = &ir.tasks[task.index()];
    let mut state = AbsState::new(n_params, body.n_slots);
    for i in 0..n_params {
        state.locals[i] = [i].into_iter().collect();
    }
    let mut walker = Walker {
        ir,
        summaries,
        fresh_base: n_params,
        next_fresh: n_params,
    };
    loop {
        state.changed = false;
        walker.next_fresh = walker.fresh_base;
        walker.walk_block(&body.stmts, &mut state);
        if !state.changed {
            break;
        }
    }
    // Partition parameters by final region.
    let mut groups: Vec<Vec<ParamIdx>> = Vec::new();
    let mut reps: Vec<usize> = Vec::new();
    for i in 0..n_params {
        let rep = state.uf.find(i);
        if let Some(pos) = reps.iter().position(|&r| r == rep) {
            groups[pos].push(ParamIdx::new(i));
        } else {
            reps.push(rep);
            groups.push(vec![ParamIdx::new(i)]);
        }
    }
    LockPlan { groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_lang::compile_source;

    fn plans(src: &str) -> (ProgramSpec, DisjointnessAnalysis) {
        let compiled = compile_source("t", src).unwrap();
        let analysis = DisjointnessAnalysis::run(&compiled.spec, &compiled.ir);
        (compiled.spec, analysis)
    }

    #[test]
    fn read_only_merge_stays_disjoint() {
        // mergeResult reads tp.count but stores no reference: disjoint.
        let (spec, analysis) = plans(
            r#"
            class StartupObject { flag initialstate; }
            class Text { flag submit; int count; }
            class Results { flag finished; int total;
                void mergeResult(Text tp) { this.total = this.total + tp.count; }
            }
            task startup(StartupObject s in initialstate) {
                Text t = new Text(){ submit := true };
                Results r = new Results(){ finished := false };
                taskexit(s: initialstate := false);
            }
            task merge(Results rp in !finished, Text tp in submit) {
                rp.mergeResult(tp);
                taskexit(rp: finished := true; tp: submit := false);
            }
            "#,
        );
        let merge = spec.task_by_name("merge").unwrap();
        assert!(!analysis.lock_plan(merge).has_sharing());
        assert_eq!(analysis.lock_plan(merge).groups.len(), 2);
    }

    #[test]
    fn storing_reference_introduces_sharing() {
        // link stores a reference to tp inside rp: sharing.
        let (spec, analysis) = plans(
            r#"
            class StartupObject { flag initialstate; }
            class Text { flag submit; int count; }
            class Results { flag finished; Text last;
                void keep(Text tp) { this.last = tp; }
            }
            task startup(StartupObject s in initialstate) {
                Text t = new Text(){ submit := true };
                Results r = new Results(){ finished := false };
                taskexit(s: initialstate := false);
            }
            task link(Results rp in !finished, Text tp in submit) {
                rp.keep(tp);
                taskexit(rp: finished := true; tp: submit := false);
            }
            "#,
        );
        let link = spec.task_by_name("link").unwrap();
        assert!(analysis.lock_plan(link).has_sharing());
        assert_eq!(analysis.lock_plan(link).groups.len(), 1);
    }

    #[test]
    fn direct_field_store_introduces_sharing() {
        let (spec, analysis) = plans(
            r#"
            class StartupObject { flag initialstate; }
            class A { flag on; B partner; }
            class B { flag on; }
            task startup(StartupObject s in initialstate) {
                A a = new A(){ on := true };
                B b = new B(){ on := true };
                taskexit(s: initialstate := false);
            }
            task pair(A a in on, B b in on) {
                a.partner = b;
                taskexit(a: on := false; b: on := false);
            }
            "#,
        );
        let pair = spec.task_by_name("pair").unwrap();
        assert!(analysis.lock_plan(pair).has_sharing());
    }

    #[test]
    fn sharing_through_returned_alias() {
        // get() returns an alias of `this`'s region; storing it into the
        // other parameter links the regions.
        let (spec, analysis) = plans(
            r#"
            class StartupObject { flag initialstate; }
            class Node { int v; }
            class A { flag on; Node n;
                Node get() { return this.n; }
            }
            class B { flag on; Node kept; }
            task startup(StartupObject s in initialstate) {
                A a = new A(){ on := true };
                B b = new B(){ on := true };
                taskexit(s: initialstate := false);
            }
            task steal(A a in on, B b in on) {
                b.kept = a.get();
                taskexit(a: on := false; b: on := false);
            }
            "#,
        );
        let steal = spec.task_by_name("steal").unwrap();
        assert!(analysis.lock_plan(steal).has_sharing());
    }

    #[test]
    fn fresh_object_does_not_link_params() {
        // Each parameter stores a reference to its own fresh object.
        let (spec, analysis) = plans(
            r#"
            class StartupObject { flag initialstate; }
            class Node { int v; }
            class A { flag on; Node n; }
            class B { flag on; Node n; }
            task startup(StartupObject s in initialstate) {
                A a = new A(){ on := true };
                B b = new B(){ on := true };
                taskexit(s: initialstate := false);
            }
            task fill(A a in on, B b in on) {
                a.n = new Node();
                b.n = new Node();
                taskexit(a: on := false; b: on := false);
            }
            "#,
        );
        let fill = spec.task_by_name("fill").unwrap();
        assert!(!analysis.lock_plan(fill).has_sharing());
    }

    #[test]
    fn same_fresh_object_links_params() {
        let (spec, analysis) = plans(
            r#"
            class StartupObject { flag initialstate; }
            class Node { int v; }
            class A { flag on; Node n; }
            class B { flag on; Node n; }
            task startup(StartupObject s in initialstate) {
                A a = new A(){ on := true };
                B b = new B(){ on := true };
                taskexit(s: initialstate := false);
            }
            task share(A a in on, B b in on) {
                Node shared = new Node();
                a.n = shared;
                b.n = shared;
                taskexit(a: on := false; b: on := false);
            }
            "#,
        );
        let share = spec.task_by_name("share").unwrap();
        assert!(analysis.lock_plan(share).has_sharing());
    }

    #[test]
    fn with_shared_override_merges_groups() {
        let (spec, analysis) = plans(
            r#"
            class StartupObject { flag initialstate; }
            task startup(StartupObject s in initialstate) {
                taskexit(s: initialstate := false);
            }
            "#,
        );
        let _ = spec;
        let a = DisjointnessAnalysis {
            lock_plans: vec![LockPlan::all_disjoint(3)],
        };
        let merged = a.with_shared(TaskId::new(0), &[ParamIdx::new(0), ParamIdx::new(2)]);
        assert!(merged.lock_plan(TaskId::new(0)).has_sharing());
        assert_eq!(merged.lock_plan(TaskId::new(0)).groups.len(), 2);
        let _ = analysis;
    }
}
