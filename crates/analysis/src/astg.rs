//! Dependence analysis: abstract state transition graphs (ASTGs).
//!
//! An ASTG is associated with an object class and abstracts the possible
//! state transitions of its instances (paper §4.1). Nodes are *abstract
//! states*: the valuation of the class's guard-relevant flags plus a
//! 1-limited count (0, 1, or ≥1) of bound tag instances per tag type.
//! Edges abstract the actions of tasks: if some task exit can transition
//! an object from state A to state B, the ASTG has an edge A → B labeled
//! with that `(task, exit, param)`.
//!
//! The analysis is a forward closure from the states objects are allocated
//! into (allocation sites and the startup object).

use bamboo_lang::ids::{ClassId, ExitId, ParamIdx, TagTypeId, TaskId};
use bamboo_lang::spec::{FlagOrTagAction, FlagSet, GlobalAllocSite, ProgramSpec};
use std::collections::HashMap;
use std::fmt;

/// 1-limited count of tag instances of one type bound to an object.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum TagCount {
    /// No instance bound.
    Zero,
    /// Exactly one instance bound.
    One,
    /// At least one instance bound (count abstracted away).
    Many,
}

impl TagCount {
    /// The count after binding one more instance.
    pub fn inc(self) -> TagCount {
        match self {
            TagCount::Zero => TagCount::One,
            TagCount::One | TagCount::Many => TagCount::Many,
        }
    }

    /// The possible counts after unbinding one instance.
    ///
    /// `Many` (≥1) may drop to zero or stay at ≥1, so both successors are
    /// returned — the ASTG is a may-analysis.
    pub fn dec(self) -> Vec<TagCount> {
        match self {
            TagCount::Zero => vec![TagCount::Zero],
            TagCount::One => vec![TagCount::Zero],
            TagCount::Many => vec![TagCount::Zero, TagCount::Many],
        }
    }

    /// Whether at least one instance is bound.
    pub fn at_least_one(self) -> bool {
        !matches!(self, TagCount::Zero)
    }
}

impl fmt::Display for TagCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagCount::Zero => write!(f, "0"),
            TagCount::One => write!(f, "1"),
            TagCount::Many => write!(f, "1+"),
        }
    }
}

/// An abstract object state: guard-relevant flags plus per-tag-type
/// 1-limited counts.
#[derive(
    Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct AbstractState {
    /// Flag valuation, masked to the class's guard-relevant flags.
    pub flags: FlagSet,
    /// Tag counts, indexed by [`TagTypeId`]; omitted entries are `Zero`.
    /// Kept sorted by tag type and free of `Zero` entries (normal form).
    pub tags: Vec<(TagTypeId, TagCount)>,
}

impl AbstractState {
    /// Creates a state from flags only.
    pub fn from_flags(flags: FlagSet) -> Self {
        AbstractState {
            flags,
            tags: Vec::new(),
        }
    }

    /// Returns the count for `tag_type`.
    pub fn tag_count(&self, tag_type: TagTypeId) -> TagCount {
        self.tags
            .iter()
            .find(|(tt, _)| *tt == tag_type)
            .map(|(_, c)| *c)
            .unwrap_or(TagCount::Zero)
    }

    /// Returns a copy with `tag_type`'s count replaced (normalizing away
    /// `Zero`).
    pub fn with_tag_count(&self, tag_type: TagTypeId, count: TagCount) -> Self {
        let mut tags: Vec<(TagTypeId, TagCount)> = self
            .tags
            .iter()
            .copied()
            .filter(|(tt, _)| *tt != tag_type)
            .collect();
        if count != TagCount::Zero {
            tags.push((tag_type, count));
        }
        tags.sort_by_key(|(tt, _)| *tt);
        AbstractState {
            flags: self.flags,
            tags,
        }
    }
}

/// Index of a state node within its class's ASTG.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct StateIdx(pub u32);

impl StateIdx {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state#{}", self.0)
    }
}

/// A task-transition edge in an ASTG.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct AstgEdge {
    /// Source state.
    pub from: StateIdx,
    /// Destination state.
    pub to: StateIdx,
    /// The transitioning task.
    pub task: TaskId,
    /// The exit that causes the transition.
    pub exit: ExitId,
    /// Which of the task's parameters the object serves as.
    pub param: ParamIdx,
}

/// The abstract state transition graph of one class.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Astg {
    /// The states, indexed by [`StateIdx`].
    pub states: Vec<AbstractState>,
    /// Task-transition edges.
    pub edges: Vec<AstgEdge>,
    /// States objects can be allocated into, with the sites that produce
    /// them (the paper's double-ellipse nodes). The startup state carries
    /// no site.
    pub alloc_states: Vec<(StateIdx, Option<GlobalAllocSite>)>,
}

impl Astg {
    /// Returns the index of `state`, if present.
    pub fn find(&self, state: &AbstractState) -> Option<StateIdx> {
        self.states
            .iter()
            .position(|s| s == state)
            .map(|i| StateIdx(i as u32))
    }

    /// Returns the outgoing edges of `state`.
    pub fn edges_from(&self, state: StateIdx) -> impl Iterator<Item = &AstgEdge> {
        self.edges.iter().filter(move |e| e.from == state)
    }

    /// Returns whether `state` can be an allocation target.
    pub fn is_alloc_state(&self, state: StateIdx) -> bool {
        self.alloc_states.iter().any(|(s, _)| *s == state)
    }
}

impl Astg {
    /// Renders this class's state machine as Graphviz dot.
    ///
    /// Double ellipses mark allocatable states; edges carry task names.
    pub fn to_dot(&self, spec: &ProgramSpec, class: ClassId) -> String {
        let class_spec = spec.class(class);
        let mut out = format!(
            "digraph astg_{} {{\n  rankdir=LR;\n  node [shape=ellipse];\n",
            class_spec.name
        );
        for (i, state) in self.states.iter().enumerate() {
            let mut label: Vec<String> = state
                .flags
                .iter()
                .map(|f| class_spec.flag_name(f).to_string())
                .collect();
            for (tt, count) in &state.tags {
                label.push(format!("{}:{count}", spec.tag_types[tt.index()].name));
            }
            let label = if label.is_empty() {
                "(none)".to_string()
            } else {
                label.join(",")
            };
            let peripheries = if self.is_alloc_state(StateIdx(i as u32)) {
                2
            } else {
                1
            };
            out.push_str(&format!(
                "  s{i} [label=\"{{{label}}}\" peripheries={peripheries}];\n"
            ));
        }
        for edge in &self.edges {
            out.push_str(&format!(
                "  s{} -> s{} [label=\"{}\"];\n",
                edge.from.0,
                edge.to.0,
                spec.task(edge.task).name
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// ASTGs for every class in a program.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct DependenceAnalysis {
    /// One ASTG per class, indexed by [`ClassId`].
    pub astgs: Vec<Astg>,
}

impl DependenceAnalysis {
    /// Runs the dependence analysis over `spec`.
    ///
    /// The closure explores every abstract state reachable from an
    /// allocation site (or the startup object) through any sequence of
    /// task exits.
    pub fn run(spec: &ProgramSpec) -> Self {
        Builder::new(spec).run()
    }

    /// Returns the ASTG of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn astg(&self, class: ClassId) -> &Astg {
        &self.astgs[class.index()]
    }

    /// Total number of abstract states across all classes.
    pub fn total_states(&self) -> usize {
        self.astgs.iter().map(|a| a.states.len()).sum()
    }
}

struct Builder<'s> {
    spec: &'s ProgramSpec,
    relevant: Vec<FlagSet>,
    astgs: Vec<Astg>,
    interned: Vec<HashMap<AbstractState, StateIdx>>,
    worklist: Vec<(ClassId, StateIdx)>,
}

impl<'s> Builder<'s> {
    fn new(spec: &'s ProgramSpec) -> Self {
        let n = spec.classes.len();
        Builder {
            spec,
            relevant: spec.guard_relevant_flags(),
            astgs: vec![Astg::default(); n],
            interned: vec![HashMap::new(); n],
            worklist: Vec::new(),
        }
    }

    fn intern(&mut self, class: ClassId, state: AbstractState) -> StateIdx {
        if let Some(&idx) = self.interned[class.index()].get(&state) {
            return idx;
        }
        let idx = StateIdx(self.astgs[class.index()].states.len() as u32);
        self.astgs[class.index()].states.push(state.clone());
        self.interned[class.index()].insert(state, idx);
        self.worklist.push((class, idx));
        idx
    }

    fn run(mut self) -> DependenceAnalysis {
        // Seed: startup object.
        let startup = self.spec.startup;
        let startup_flags = FlagSet::new()
            .with(startup.flag, true)
            .masked(self.relevant[startup.class.index()]);
        let idx = self.intern(startup.class, AbstractState::from_flags(startup_flags));
        self.astgs[startup.class.index()]
            .alloc_states
            .push((idx, None));

        // Seed: every allocation site.
        for (task_id, task) in self.spec.tasks_enumerated() {
            for (site_i, site) in task.alloc_sites.iter().enumerate() {
                let flags = site
                    .initial_flag_set()
                    .masked(self.relevant[site.class.index()]);
                let mut state = AbstractState::from_flags(flags);
                for var in &site.bound_tags {
                    let tt = task.tag_vars[var.index()].tag_type;
                    state = state.with_tag_count(tt, state.tag_count(tt).inc());
                }
                let idx = self.intern(site.class, state);
                let gsite = GlobalAllocSite {
                    task: task_id,
                    site: site_i.into(),
                };
                let astg = &mut self.astgs[site.class.index()];
                if !astg.alloc_states.contains(&(idx, Some(gsite))) {
                    astg.alloc_states.push((idx, Some(gsite)));
                }
            }
        }

        // Closure.
        while let Some((class, state_idx)) = self.worklist.pop() {
            self.expand(class, state_idx);
        }
        DependenceAnalysis { astgs: self.astgs }
    }

    /// Applies every satisfiable (task, param, exit) to the state.
    fn expand(&mut self, class: ClassId, state_idx: StateIdx) {
        let state = self.astgs[class.index()].states[state_idx.index()].clone();
        for (task_id, task) in self.spec.tasks_enumerated() {
            for (pi, param) in task.params.iter().enumerate() {
                if param.class != class {
                    continue;
                }
                if !param.guard.eval(state.flags) {
                    continue;
                }
                // Tag constraints: each requires ≥1 bound instance of the
                // constrained tag type.
                if !param
                    .tags
                    .iter()
                    .all(|tc| state.tag_count(tc.tag_type).at_least_one())
                {
                    continue;
                }
                let param_idx = ParamIdx::new(pi);
                for (ei, exit) in task.exits.iter().enumerate() {
                    let exit_id = ExitId::new(ei);
                    let new_flags = exit
                        .apply_flags(param_idx, state.flags)
                        .masked(self.relevant[class.index()]);
                    // Tag actions can branch (1-limited decrement).
                    let mut successors = vec![AbstractState {
                        flags: new_flags,
                        tags: state.tags.clone(),
                    }];
                    for action in exit.tag_actions(param_idx) {
                        let mut next = Vec::new();
                        for s in &successors {
                            match action {
                                FlagOrTagAction::AddTag(var) => {
                                    let tt = task.tag_vars[var.index()].tag_type;
                                    next.push(s.with_tag_count(tt, s.tag_count(tt).inc()));
                                }
                                FlagOrTagAction::ClearTag(var) => {
                                    let tt = task.tag_vars[var.index()].tag_type;
                                    for c in s.tag_count(tt).dec() {
                                        next.push(s.with_tag_count(tt, c));
                                    }
                                }
                                FlagOrTagAction::SetFlag(..) => unreachable!("filtered"),
                            }
                        }
                        successors = next;
                    }
                    for succ in successors {
                        let to = self.intern(class, succ);
                        let edge = AstgEdge {
                            from: state_idx,
                            to,
                            task: task_id,
                            exit: exit_id,
                            param: param_idx,
                        };
                        let astg = &mut self.astgs[class.index()];
                        if !astg.edges.contains(&edge) {
                            astg.edges.push(edge);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_lang::compile_source;

    fn kc_spec() -> ProgramSpec {
        compile_source(
            "kc",
            r#"
            class StartupObject { flag initialstate; }
            class Text {
                flag process; flag submit;
                int count;
            }
            class Results {
                flag finished;
                int merged; int expected;
                boolean merge() {
                    this.merged = this.merged + 1;
                    return this.merged == this.expected;
                }
            }
            task startup(StartupObject s in initialstate) {
                Text tp = new Text(){ process := true };
                Results rp = new Results(){ finished := false };
                taskexit(s: initialstate := false);
            }
            task processText(Text tp in process) {
                taskexit(tp: process := false, submit := true);
            }
            task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
                boolean all = rp.merge();
                if (all) { taskexit(rp: finished := true; tp: submit := false); }
                taskexit(tp: submit := false);
            }
            "#,
        )
        .unwrap()
        .spec
    }

    #[test]
    fn text_class_has_three_states() {
        let spec = kc_spec();
        let analysis = DependenceAnalysis::run(&spec);
        let text = spec.class_by_name("Text").unwrap();
        let astg = analysis.astg(text);
        // {process}, {submit}, {} — mirrors Figure 3 of the paper.
        assert_eq!(astg.states.len(), 3);
        assert_eq!(astg.alloc_states.len(), 1);
        // process --processText--> submit --merge (2 exits)--> {}.
        assert_eq!(astg.edges.len(), 3);
    }

    #[test]
    fn results_class_transitions_to_finished() {
        let spec = kc_spec();
        let analysis = DependenceAnalysis::run(&spec);
        let results = spec.class_by_name("Results").unwrap();
        let astg = analysis.astg(results);
        // !finished --exit0--> finished, and --exit1--> !finished (self).
        assert_eq!(astg.states.len(), 2);
        let self_edges = astg.edges.iter().filter(|e| e.from == e.to).count();
        assert_eq!(self_edges, 1);
    }

    #[test]
    fn startup_reaches_dead_state() {
        let spec = kc_spec();
        let analysis = DependenceAnalysis::run(&spec);
        let astg = analysis.astg(spec.startup.class);
        assert_eq!(astg.states.len(), 2);
        assert_eq!(astg.edges.len(), 1);
        // The post-startup state has no outgoing edges.
        let dead = astg.edges[0].to;
        assert_eq!(astg.edges_from(dead).count(), 0);
    }

    #[test]
    fn tag_counts_are_one_limited() {
        assert_eq!(TagCount::Zero.inc(), TagCount::One);
        assert_eq!(TagCount::One.inc(), TagCount::Many);
        assert_eq!(TagCount::Many.inc(), TagCount::Many);
        assert_eq!(TagCount::One.dec(), vec![TagCount::Zero]);
        assert_eq!(TagCount::Many.dec(), vec![TagCount::Zero, TagCount::Many]);
    }

    #[test]
    fn tagged_allocation_seeds_tagged_state() {
        let spec = compile_source(
            "t",
            r#"
            class StartupObject { flag initialstate; }
            class Image { flag raw; flag done; }
            tagtype link;
            task startup(StartupObject s in initialstate) {
                tag t = new tag(link);
                Image i = new Image(){ raw := true, add t };
                taskexit(s: initialstate := false);
            }
            task work(Image i in raw with link t) {
                taskexit(i: raw := false, done := true, clear t);
            }
            "#,
        )
        .unwrap()
        .spec;
        let analysis = DependenceAnalysis::run(&spec);
        let image = spec.class_by_name("Image").unwrap();
        let astg = analysis.astg(image);
        let alloc_state = &astg.states[astg.alloc_states[0].0.index()];
        assert_eq!(
            alloc_state.tag_count(bamboo_lang::ids::TagTypeId::new(0)),
            TagCount::One
        );
        // The work task's exit clears the tag: destination has Zero.
        assert!(astg.edges.iter().any(|e| {
            astg.states[e.to.index()].tag_count(bamboo_lang::ids::TagTypeId::new(0))
                == TagCount::Zero
        }));
    }

    #[test]
    fn astg_dot_lists_states_and_tasks() {
        let spec = kc_spec();
        let analysis = DependenceAnalysis::run(&spec);
        let text = spec.class_by_name("Text").unwrap();
        let dot = analysis.astg(text).to_dot(&spec, text);
        assert!(dot.contains("digraph astg_Text"));
        assert!(dot.contains("processText"));
        assert!(dot.contains("peripheries=2"));
    }

    #[test]
    fn guard_irrelevant_flags_do_not_split_states() {
        // `done` never appears in a guard, so it must not create states.
        let spec = compile_source(
            "t",
            r#"
            class StartupObject { flag initialstate; }
            class W { flag ready; flag done; }
            task startup(StartupObject s in initialstate) {
                W w = new W(){ ready := true };
                taskexit(s: initialstate := false);
            }
            task work(W w in ready) {
                taskexit(w: ready := false, done := true);
            }
            "#,
        )
        .unwrap()
        .spec;
        let analysis = DependenceAnalysis::run(&spec);
        let w = spec.class_by_name("W").unwrap();
        assert_eq!(analysis.astg(w).states.len(), 2);
    }
}
