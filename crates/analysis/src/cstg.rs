//! The combined state transition graph (CSTG).
//!
//! The CSTG merges the per-class ASTGs into one graph characterizing the
//! whole application (paper §4.3.1): nodes are abstract object states of
//! task-parameter classes, solid edges are task transitions, and dashed
//! *new-object* edges connect a creating task to the abstract state its
//! allocation sites produce. The implementation synthesizer transforms
//! this graph; annotated with profile data it forms the Markov model that
//! drives the scheduling simulator.

use crate::astg::{AstgEdge, DependenceAnalysis, StateIdx};
use bamboo_lang::ids::{ClassId, ExitId, ParamIdx, TaskId};
use bamboo_lang::spec::{FlagSet, GlobalAllocSite, ProgramSpec};
use std::collections::HashMap;
use std::fmt;

/// Global index of a CSTG state node.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// A CSTG state node: one abstract state of one class.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct CstgNode {
    /// The owning class.
    pub class: ClassId,
    /// The state within that class's ASTG.
    pub state: StateIdx,
    /// Whether objects can be allocated directly into this state.
    pub allocatable: bool,
}

/// A task-transition (solid) edge.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TaskEdge {
    /// Source state node.
    pub from: NodeId,
    /// Destination state node.
    pub to: NodeId,
    /// The transitioning task.
    pub task: TaskId,
    /// The exit taken.
    pub exit: ExitId,
    /// Which parameter of the task the object serves as.
    pub param: ParamIdx,
}

/// A new-object (dashed) edge: `task`'s allocation site `site` creates
/// objects in state `to`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct NewEdge {
    /// The creating task.
    pub task: TaskId,
    /// The allocation site.
    pub site: GlobalAllocSite,
    /// The created objects' state node.
    pub to: NodeId,
}

/// The combined state transition graph.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Cstg {
    /// State nodes.
    pub nodes: Vec<CstgNode>,
    /// Solid task-transition edges.
    pub task_edges: Vec<TaskEdge>,
    /// Dashed new-object edges.
    pub new_edges: Vec<NewEdge>,
    index: HashMap<(ClassId, StateIdx), NodeId>,
}

impl Cstg {
    /// Builds the CSTG from the dependence analysis results.
    pub fn build(spec: &ProgramSpec, analysis: &DependenceAnalysis) -> Self {
        let mut cstg = Cstg::default();
        for (class, _) in spec.classes_enumerated() {
            let astg = analysis.astg(class);
            for (i, _) in astg.states.iter().enumerate() {
                let state = StateIdx(i as u32);
                let id = NodeId(cstg.nodes.len() as u32);
                cstg.nodes.push(CstgNode {
                    class,
                    state,
                    allocatable: astg.is_alloc_state(state),
                });
                cstg.index.insert((class, state), id);
            }
        }
        for (class, _) in spec.classes_enumerated() {
            let astg = analysis.astg(class);
            for AstgEdge {
                from,
                to,
                task,
                exit,
                param,
            } in &astg.edges
            {
                cstg.task_edges.push(TaskEdge {
                    from: cstg.index[&(class, *from)],
                    to: cstg.index[&(class, *to)],
                    task: *task,
                    exit: *exit,
                    param: *param,
                });
            }
            for (state, site) in &astg.alloc_states {
                if let Some(site) = site {
                    cstg.new_edges.push(NewEdge {
                        task: site.task,
                        site: *site,
                        to: cstg.index[&(class, *state)],
                    });
                }
            }
        }
        cstg
    }

    /// Returns the node for `(class, state)`, if present.
    pub fn node(&self, class: ClassId, state: StateIdx) -> Option<NodeId> {
        self.index.get(&(class, state)).copied()
    }

    /// Returns the state node the startup object begins in.
    ///
    /// # Panics
    ///
    /// Panics if the CSTG was built from a spec without a reachable
    /// startup state (cannot happen for analysis output).
    pub fn startup_node(&self, spec: &ProgramSpec, analysis: &DependenceAnalysis) -> NodeId {
        let astg = analysis.astg(spec.startup.class);
        let (state, _) = astg
            .alloc_states
            .iter()
            .find(|(_, site)| site.is_none())
            .expect("startup state exists");
        self.index[&(spec.startup.class, *state)]
    }

    /// Returns the tasks whose transitions leave `node`.
    pub fn tasks_from(&self, node: NodeId) -> Vec<TaskId> {
        let mut tasks: Vec<TaskId> = self
            .task_edges
            .iter()
            .filter(|e| e.from == node)
            .map(|e| e.task)
            .collect();
        tasks.sort();
        tasks.dedup();
        tasks
    }

    /// Renders the CSTG as Graphviz dot (the shape of the paper's
    /// Figure 3, without profile annotations).
    pub fn to_dot(&self, spec: &ProgramSpec, analysis: &DependenceAnalysis) -> String {
        let mut out = String::from("digraph cstg {\n  rankdir=LR;\n  node [shape=ellipse];\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let class = spec.class(node.class);
            let state = &analysis.astg(node.class).states[node.state.index()];
            let mut label: Vec<String> = state
                .flags
                .iter()
                .map(|f| class.flag_name(f).to_string())
                .collect();
            for (tt, count) in &state.tags {
                label.push(format!("{}:{count}", spec.tag_types[tt.index()].name));
            }
            let label = if label.is_empty() {
                "(none)".to_string()
            } else {
                label.join(",")
            };
            let peripheries = if node.allocatable { 2 } else { 1 };
            out.push_str(&format!(
                "  n{i} [label=\"{}\\n{{{label}}}\" peripheries={peripheries}];\n",
                class.name
            ));
        }
        for edge in &self.task_edges {
            out.push_str(&format!(
                "  n{} -> n{} [label=\"{}\"];\n",
                edge.from.0,
                edge.to.0,
                spec.task(edge.task).name
            ));
        }
        for edge in &self.new_edges {
            // Dashed edges originate at any node the creating task leaves.
            let sources: Vec<NodeId> = self
                .task_edges
                .iter()
                .filter(|e| e.task == edge.task)
                .map(|e| e.from)
                .collect();
            for src in sources.iter().take(1) {
                out.push_str(&format!(
                    "  n{} -> n{} [style=dashed label=\"new via {}\"];\n",
                    src.0,
                    edge.to.0,
                    spec.task(edge.task).name
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Returns the `(task, param)` pairs whose guard (and class) a concrete
/// object state satisfies — the dispatch question the runtime asks after
/// every transition.
///
/// Tag constraints are not checked here (they need instance identity, not
/// counts); callers filter those separately.
pub fn enabled_params(
    spec: &ProgramSpec,
    class: ClassId,
    flags: FlagSet,
) -> Vec<(TaskId, ParamIdx)> {
    let mut out = Vec::new();
    for (task_id, task) in spec.tasks_enumerated() {
        for (pi, param) in task.params.iter().enumerate() {
            if param.class == class && param.guard.eval(flags) {
                out.push((task_id, ParamIdx::new(pi)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_lang::compile_source;

    fn kc() -> (ProgramSpec, DependenceAnalysis, Cstg) {
        let spec = compile_source(
            "kc",
            r#"
            class StartupObject { flag initialstate; }
            class Text { flag process; flag submit; }
            class Results { flag finished; }
            task startup(StartupObject s in initialstate) {
                Text tp = new Text(){ process := true };
                Results rp = new Results(){ finished := false };
                taskexit(s: initialstate := false);
            }
            task processText(Text tp in process) {
                taskexit(tp: process := false, submit := true);
            }
            task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
                if (1 < 2) { taskexit(rp: finished := true; tp: submit := false); }
                taskexit(tp: submit := false);
            }
            "#,
        )
        .unwrap()
        .spec;
        let analysis = DependenceAnalysis::run(&spec);
        let cstg = Cstg::build(&spec, &analysis);
        (spec, analysis, cstg)
    }

    #[test]
    fn node_count_matches_astg_totals() {
        let (_, analysis, cstg) = kc();
        assert_eq!(cstg.nodes.len(), analysis.total_states());
    }

    #[test]
    fn new_edges_cover_alloc_sites() {
        let (spec, _, cstg) = kc();
        // startup has 2 allocation sites.
        let startup = spec.task_by_name("startup").unwrap();
        let from_startup = cstg.new_edges.iter().filter(|e| e.task == startup).count();
        assert_eq!(from_startup, 2);
    }

    #[test]
    fn startup_node_is_allocatable() {
        let (spec, analysis, cstg) = kc();
        let node = cstg.startup_node(&spec, &analysis);
        assert!(cstg.nodes[node.index()].allocatable);
    }

    #[test]
    fn tasks_from_startup_state() {
        let (spec, analysis, cstg) = kc();
        let node = cstg.startup_node(&spec, &analysis);
        let tasks = cstg.tasks_from(node);
        assert_eq!(tasks, vec![spec.task_by_name("startup").unwrap()]);
    }

    #[test]
    fn enabled_params_matches_guards() {
        let (spec, _, _) = kc();
        let text = spec.class_by_name("Text").unwrap();
        let text_class = spec.class(text);
        let process = text_class.flag_by_name("process").unwrap();
        let submit = text_class.flag_by_name("submit").unwrap();
        let in_process = FlagSet::new().with(process, true);
        let enabled = enabled_params(&spec, text, in_process);
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].0, spec.task_by_name("processText").unwrap());
        let in_submit = FlagSet::new().with(submit, true);
        let enabled = enabled_params(&spec, text, in_submit);
        assert_eq!(
            enabled[0].0,
            spec.task_by_name("mergeIntermediateResult").unwrap()
        );
        assert_eq!(enabled[0].1, ParamIdx::new(1));
    }

    #[test]
    fn dot_output_contains_all_nodes() {
        let (spec, analysis, cstg) = kc();
        let dot = cstg.to_dot(&spec, &analysis);
        assert!(dot.contains("digraph cstg"));
        assert!(dot.contains("peripheries=2"));
        for i in 0..cstg.nodes.len() {
            assert!(dot.contains(&format!("n{i} ")));
        }
    }
}
