//! The items every Bamboo program touches, in one import.
//!
//! ```
//! use bamboo::prelude::*;
//! ```
//!
//! Covers the end-to-end flow: compile ([`Compiler`], or
//! [`ProgramBuilder`] + [`body`] for native programs) → profile →
//! synthesize ([`SynthesisOptions`], [`MachineDescription`]) → deploy
//! ([`Deployment`], [`RunOptions`]) → execute ([`VirtualExecutor`],
//! [`ThreadedExecutor`]) → serve ([`Server`], [`ServingOptions`],
//! arrival processes) → inspect ([`Telemetry`]), with [`Error`]
//! threading the failures.

pub use crate::error::Error;
pub use crate::handle::{DeploymentHandle, LayoutEpoch, ServingSession};
pub use crate::Compiler;
pub use bamboo_lang::builder::ProgramBuilder;
pub use bamboo_lang::spec::FlagExpr;
pub use bamboo_machine::MachineDescription;
pub use bamboo_profile::Profile;
pub use bamboo_runtime::{
    body, AdaptPolicy, AdaptReport, Deployment, ExecConfig, ExecError, FaultSpec, NativeBody,
    Program, RelayoutError, RunOptions, StealPolicy, ThreadedExecutor, VirtualExecutor,
};
pub use bamboo_schedule::{GroupGraph, Layout, SynthesisOptions, SynthesisResult};
pub use bamboo_serving::{Bursty, Poisson, ScopeConfig, Server, ServingOptions};
pub use bamboo_telemetry::Telemetry;
