//! The unified `bamboo::Error` type.
//!
//! Every fallible stage of the pipeline has its own error — the
//! frontend's [`CompileError`], the executors' [`ExecError`], result
//! extraction's [`PayloadTypeError`] — and end-to-end callers (the
//! examples, integration tests, applications) previously had to thread
//! `Box<dyn Error>` through. [`Error`] wraps them all, with `From`
//! conversions so `?` composes the whole flow.

use bamboo_lang::span::CompileError;
use bamboo_runtime::{ExecError, PayloadTypeError, RelayoutError};
use bamboo_serving::{ServingError, ShedReason};
use std::fmt;

/// Any error the Bamboo pipeline can produce, from source compilation
/// through execution and result extraction.
///
/// ```
/// use bamboo::{Compiler, Error};
///
/// fn pipeline() -> Result<(), Error> {
///     let compiler = Compiler::from_source("bad", "class A {")?; // CompileError → Error
///     let _ = compiler;
///     Ok(())
/// }
/// assert!(matches!(pipeline(), Err(Error::Compile(_))));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The frontend rejected the program (parse or semantic
    /// diagnostics).
    Compile(CompileError),
    /// An executor failed (trap, divergence, or an interpreted program
    /// handed to the threaded executor).
    Exec(ExecError),
    /// A finished-object payload failed to downcast to the requested
    /// type.
    Payload(PayloadTypeError),
    /// A core died under fault injection and its work could not be
    /// recovered (no live replica of a hosted group, or recovery was
    /// disabled). Surfaced as its own variant — distinct from
    /// [`Error::Exec`] — so chaos-aware callers can match on it without
    /// destructuring executor internals.
    CoreLost {
        /// The core that was lost.
        core: usize,
    },
    /// The serving layer refused a request at admission (token-bucket
    /// rate limit or queue-depth shedding). A typed backpressure
    /// signal: the server is healthy, the caller should back off.
    Overloaded {
        /// Which admission policy refused the request.
        reason: ShedReason,
    },
    /// A hot-relayout commit was rejected (unknown instance, unknown
    /// core, or a dead target). The deployment keeps running on its
    /// current layout — commits validate every move before mutating
    /// anything — so this is advisory, not fatal.
    RelayoutFailed(RelayoutError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile(e) => write!(f, "compile error: {e}"),
            Error::Exec(e) => write!(f, "execution error: {e}"),
            Error::Payload(e) => write!(f, "payload error: {e}"),
            Error::CoreLost { core } => {
                write!(
                    f,
                    "core {core} was lost and its work could not be recovered"
                )
            }
            Error::Overloaded { reason } => {
                write!(f, "request shed at admission ({reason})")
            }
            Error::RelayoutFailed(e) => write!(f, "hot relayout rejected: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Compile(e) => Some(e),
            Error::Exec(e) => Some(e),
            Error::Payload(e) => Some(e),
            Error::RelayoutFailed(e) => Some(e),
            Error::CoreLost { .. } | Error::Overloaded { .. } => None,
        }
    }
}

impl From<ServingError> for Error {
    fn from(e: ServingError) -> Self {
        match e {
            ServingError::Overloaded { reason } => Error::Overloaded { reason },
            ServingError::Exec(exec) => exec.into(),
            ServingError::Relayout(e) => Error::RelayoutFailed(e),
            // `ServingError` is non-exhaustive; fold any future variant
            // into the trap shape rather than panicking.
            other => Error::Exec(ExecError::Trap(other.to_string())),
        }
    }
}

impl From<RelayoutError> for Error {
    fn from(e: RelayoutError) -> Self {
        Error::RelayoutFailed(e)
    }
}

impl From<CompileError> for Error {
    fn from(e: CompileError) -> Self {
        Error::Compile(e)
    }
}

impl From<ExecError> for Error {
    fn from(e: ExecError) -> Self {
        match e {
            ExecError::CoreLost { core } => Error::CoreLost { core },
            other => Error::Exec(other),
        }
    }
}

impl From<PayloadTypeError> for Error {
    fn from(e: PayloadTypeError) -> Self {
        Error::Payload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn exec_errors_convert_and_chain() {
        let err: Error = ExecError::Diverged(10).into();
        assert!(matches!(err, Error::Exec(ExecError::Diverged(10))));
        assert!(err.to_string().starts_with("execution error:"));
        assert!(err.source().is_some());
    }

    #[test]
    fn core_loss_surfaces_as_its_own_variant() {
        let err: Error = ExecError::CoreLost { core: 3 }.into();
        assert!(matches!(err, Error::CoreLost { core: 3 }));
        assert!(err.to_string().contains("core 3"), "{err}");
        // Terminal variant: no inner source to chain to.
        assert!(err.source().is_none());
        // Message loss stays an ordinary executor error.
        let err: Error = ExecError::MessageLost { msg: 9 }.into();
        assert!(matches!(
            err,
            Error::Exec(ExecError::MessageLost { msg: 9 })
        ));
    }

    #[test]
    fn serving_overload_converts_typed() {
        let err: Error = ServingError::Overloaded {
            reason: ShedReason::RateLimit,
        }
        .into();
        assert!(matches!(
            err,
            Error::Overloaded {
                reason: ShedReason::RateLimit
            }
        ));
        assert!(err.to_string().contains("rate limit"), "{err}");
        assert!(err.source().is_none());
        // A serving-wrapped core loss still surfaces as CoreLost.
        let err: Error = ServingError::Exec(ExecError::CoreLost { core: 5 }).into();
        assert!(matches!(err, Error::CoreLost { core: 5 }));
    }

    #[test]
    fn relayout_rejections_convert_and_chain() {
        let err: Error = RelayoutError::DeadCore { core: 4 }.into();
        assert!(matches!(
            err,
            Error::RelayoutFailed(RelayoutError::DeadCore { core: 4 })
        ));
        assert!(err.to_string().contains("hot relayout rejected"), "{err}");
        assert!(err.source().is_some(), "chains to the runtime error");
        // The serving wrapper takes the same path.
        let err: Error =
            ServingError::Relayout(RelayoutError::UnknownInstance { instance: 9 }).into();
        assert!(matches!(err, Error::RelayoutFailed(_)));
    }

    #[test]
    fn compile_errors_convert_through_question_mark() {
        fn compile() -> Result<(), Error> {
            crate::Compiler::from_source("bad", "class A {")?;
            Ok(())
        }
        let err = compile().unwrap_err();
        assert!(matches!(err, Error::Compile(_)));
        assert!(err.to_string().starts_with("compile error:"));
    }
}
