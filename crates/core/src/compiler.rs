//! The end-to-end compiler driver.
//!
//! [`Compiler`] wires the full Bamboo pipeline together: frontend (DSL
//! source or native builder) → dependence analysis (ASTG/CSTG) →
//! disjointness analysis (lock plans) → profiling run → implementation
//! synthesis → execution on one of the runtime's executors.

use bamboo_analysis::{Cstg, DependenceAnalysis, DisjointnessAnalysis};
use bamboo_lang::builder::BuiltProgram;
use bamboo_lang::span::CompileError;
use bamboo_machine::MachineDescription;
use bamboo_profile::{Profile, ProfileCollector};
use bamboo_runtime::{
    Deployment, ExecConfig, ExecError, NativeBody, NativePayload, Program, RunReport,
    VirtualExecutor,
};
use bamboo_schedule::{synthesize, GroupGraph, Layout, SynthesisOptions, SynthesisResult};
use rand::Rng;

/// A fully analyzed, executable Bamboo program.
#[derive(Debug)]
pub struct Compiler {
    /// The executable program (spec + bodies).
    pub program: Program,
    /// Dependence analysis results (per-class ASTGs).
    pub dependence: DependenceAnalysis,
    /// The combined state transition graph.
    pub cstg: Cstg,
    /// Disjointness analysis results (lock plans).
    pub locks: DisjointnessAnalysis,
}

impl Compiler {
    /// Compiles DSL source, running all analyses.
    ///
    /// # Errors
    ///
    /// Returns every frontend diagnostic.
    pub fn from_source(name: &str, source: &str) -> Result<Self, CompileError> {
        let compiled = bamboo_lang::compile_source(name, source)?;
        let dependence = DependenceAnalysis::run(&compiled.spec);
        let cstg = Cstg::build(&compiled.spec, &dependence);
        let locks = DisjointnessAnalysis::run(&compiled.spec, &compiled.ir);
        let program = Program::from_compiled(compiled);
        Ok(Compiler {
            program,
            dependence,
            cstg,
            locks,
        })
    }

    /// Wraps a natively built program.
    ///
    /// Native bodies carry no analyzable IR, so parameters default to
    /// disjoint; override with [`Compiler::with_locks`] when a task's body
    /// stores references across parameters.
    pub fn from_native(built: BuiltProgram<NativeBody>) -> Self {
        let program = Program::from_native(built);
        let dependence = DependenceAnalysis::run(&program.spec);
        let cstg = Cstg::build(&program.spec, &dependence);
        let locks = DisjointnessAnalysis::all_disjoint(&program.spec);
        Compiler {
            program,
            dependence,
            cstg,
            locks,
        }
    }

    /// Replaces the lock plans (for native programs with cross-parameter
    /// sharing).
    pub fn with_locks(mut self, locks: DisjointnessAnalysis) -> Self {
        self.locks = locks;
        self
    }

    /// Builds the base group graph using an empty bootstrap profile
    /// (allocation means default to 1; layout-independent execution does
    /// not consult them).
    pub fn bootstrap_graph(&self) -> GroupGraph {
        let empty = ProfileCollector::new(&self.program.spec, "bootstrap").finish();
        GroupGraph::build(&self.program.spec, &self.cstg, &empty)
    }

    /// Builds the group graph annotated by `profile`.
    pub fn graph_with_profile(&self, profile: &Profile) -> GroupGraph {
        GroupGraph::build(&self.program.spec, &self.cstg, profile)
    }

    /// Creates a virtual-time executor over the given plan.
    pub fn executor<'a>(
        &'a self,
        graph: &'a GroupGraph,
        layout: &'a Layout,
        machine: &'a MachineDescription,
        config: ExecConfig,
    ) -> VirtualExecutor<'a> {
        VirtualExecutor::new(&self.program, graph, layout, machine, &self.locks, config)
    }

    /// Runs the single-core profiling bootstrap (paper §4.3.1): executes
    /// the program on one core, collecting a [`Profile`], and hands the
    /// finished executor to `inspect` for result extraction.
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    pub fn profile_run<T>(
        &self,
        startup: Option<NativePayload>,
        input_label: &str,
        inspect: impl FnOnce(&VirtualExecutor<'_>) -> T,
    ) -> Result<(Profile, RunReport, T), ExecError> {
        let graph = self.bootstrap_graph();
        let layout = Layout::single_core(&graph);
        let machine = MachineDescription::n_cores(1);
        let config = ExecConfig {
            profile_input: Some(input_label.to_string()),
            ..ExecConfig::default()
        };
        let mut exec = self.executor(&graph, &layout, &machine, config);
        let mut report = exec.run(startup)?;
        let profile = report
            .profile
            .take()
            .expect("profile collection was requested");
        let value = inspect(&exec);
        Ok((profile, report, value))
    }

    /// Bundles a synthesizer result with this compiler's program and
    /// lock plans into a [`Deployment`] — the artifact both executors
    /// consume (`ThreadedExecutor::run(&deployment, options)`,
    /// `VirtualExecutor::over(&deployment, ...)`).
    pub fn deploy(&self, synthesis: &SynthesisResult) -> Deployment {
        Deployment::from_synthesis(&self.program, &self.locks, synthesis)
    }

    /// Runs implementation synthesis for `machine` (paper §4.3-§4.5).
    ///
    /// Synthesis scales with host cores: candidate evaluations inside
    /// the annealer and replication-variant searches fan out over
    /// `opts.threads` workers (`0` = every available core), memoizing
    /// simulations by layout fingerprint. The plan is bit-identical at
    /// any thread count — `SynthesisOptions::default()` is already
    /// parallel, and `opts.with_threads(1)` forces the serial schedule.
    pub fn synthesize<R: Rng>(
        &self,
        profile: &Profile,
        machine: &MachineDescription,
        opts: &SynthesisOptions,
        rng: &mut R,
    ) -> SynthesisResult {
        synthesize(&self.program.spec, &self.cstg, profile, machine, opts, rng)
    }

    /// Like [`Self::synthesize`], additionally recording the DSA
    /// optimizer's search statistics (iterations, simulations,
    /// acceptance rate, simulation-cache hits/misses, best-cost
    /// trajectory) into `telemetry` as `dsa.*` metrics.
    pub fn synthesize_with_telemetry<R: Rng>(
        &self,
        profile: &Profile,
        machine: &MachineDescription,
        opts: &SynthesisOptions,
        rng: &mut R,
        telemetry: &bamboo_telemetry::Telemetry,
    ) -> SynthesisResult {
        let result = self.synthesize(profile, machine, opts, rng);
        telemetry.record_dsa(&result.stats);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_lang::builder::ProgramBuilder;
    use bamboo_lang::spec::FlagExpr;
    use bamboo_runtime::body;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn native_fanout(n: i64) -> Compiler {
        let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("fanout");
        let s = b.class("StartupObject", &["initialstate"]);
        let w = b.class("Work", &["ready"]);
        let init = b.flag(s, "initialstate");
        let ready = b.flag(w, "ready");
        b.task("startup")
            .param("s", s, FlagExpr::flag(init))
            .alloc(w, &[(ready, true)], &[])
            .exit("", |e| e.set(0, init, false))
            .body(body(move |ctx| {
                for i in 0..n {
                    ctx.create(0, i);
                }
                ctx.charge(100);
                0
            }))
            .finish();
        b.task("work")
            .param("w", w, FlagExpr::flag(ready))
            .exit("", |e| e.set(0, ready, false))
            .body(body(|ctx| {
                ctx.charge(5_000);
                0
            }))
            .finish();
        Compiler::from_native(b.build().unwrap())
    }

    #[test]
    fn full_pipeline_profiles_synthesizes_and_speeds_up() {
        let compiler = native_fanout(32);
        let (profile, report, ()) = compiler.profile_run(None, "original", |_| ()).unwrap();
        assert_eq!(report.invocations, 33);
        let machine = MachineDescription::sixteen();
        let mut rng = StdRng::seed_from_u64(9);
        let result =
            compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
        // Run the synthesized layout for real.
        let mut exec = compiler.executor(
            &result.graph,
            &result.layout,
            &machine,
            ExecConfig::default(),
        );
        let parallel = exec.run(None).unwrap();
        assert!(parallel.quiesced);
        let speedup = report.makespan as f64 / parallel.makespan as f64;
        assert!(speedup > 4.0, "speedup only {speedup:.2}x");
    }

    #[test]
    fn dsl_pipeline_compiles_and_runs() {
        let compiler = Compiler::from_source(
            "kc",
            r#"
            class StartupObject { flag initialstate; }
            class Work { flag ready; int v; Work(int v) { this.v = v; } }
            task startup(StartupObject s in initialstate) {
                for (int i = 0; i < 6; i = i + 1) {
                    Work w = new Work(i){ ready := true };
                }
                taskexit(s: initialstate := false);
            }
            task run(Work w in ready) {
                w.v = w.v * w.v;
                taskexit(w: ready := false);
            }
            "#,
        )
        .unwrap();
        let (profile, report, ()) = compiler.profile_run(None, "x", |_| ()).unwrap();
        assert_eq!(report.invocations, 7);
        assert_eq!(
            profile
                .task(compiler.program.spec.task_by_name("run").unwrap())
                .invocations(),
            6
        );
    }

    #[test]
    fn source_errors_are_reported() {
        let err = Compiler::from_source("bad", "class A {").unwrap_err();
        assert!(!err.diagnostics.is_empty());
    }
}
