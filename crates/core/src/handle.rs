//! The deployment lifecycle: `deploy → run | serve → adapt → snapshot/stop`.
//!
//! Before 0.7 the end-to-end flow was stitched from loose parts — build
//! a [`Deployment`], pick a `ThreadedExecutor`, hand both plus a
//! [`RunOptions`] to `run`/`start`, or thread them through
//! [`Server::start`] for serving — and the adaptive re-layout loop
//! (PR 7) would have added yet another handle to juggle. The
//! [`DeploymentHandle`] collapses that into one lifecycle object:
//!
//! ```text
//!   DeploymentHandle::deploy(&compiler, &plan)   // or ::from_deployment
//!       .with_telemetry(..)                      // RunOptions builders
//!       .with_adapt(AdaptPolicy::new(machine))   // arm the doctor→DSA loop
//!       .run()                                   // batch: one shot, report
//!       .serve(ServingOptions::new())            // resident: ServingSession
//!       .start()                                 // resident: raw ResidentRun
//! ```
//!
//! A handle is consumed by whichever terminal you pick — `run` for
//! batch, `serve` for the open-loop serving front-end, `start` for
//! direct control of the resident run (tests, custom drivers). The
//! serving path returns a [`ServingSession`] whose
//! [`snapshot`](ServingSession::snapshot) exposes the layout as a
//! *versioned artifact* ([`LayoutEpoch`]): epoch 0 is the synthesized
//! plan, and every hot relayout committed by the adaptive controller
//! bumps the epoch while the session keeps serving.

use crate::error::Error;
use crate::Compiler;
use bamboo_runtime::{
    AdaptPolicy, Deployment, FaultSpec, NativePayload, QuiescencePolicy, ResidentRun, RunOptions,
    StealPolicy, ThreadedExecutor, ThreadedReport,
};
use bamboo_schedule::{Layout, SynthesisResult};
use bamboo_serving::{
    ArrivalProcess, ChannelIngress, ScopeConfig, ScopeHandle, Server, ServingOptions, ServingReport,
};
use bamboo_telemetry::Telemetry;
use std::fmt;

/// A versioned layout artifact: which [`Layout`] routed the deployment
/// at a given adaptation epoch.
///
/// Epoch 0 is the synthesized plan; each committed hot relayout bumps
/// the epoch by one and overlays the migrated groups' new cores on the
/// topology. Doctor verdicts, serving reports, and `relayout.*`
/// telemetry all stamp the epoch they observed, so post-hoc analysis
/// can attribute every window to the layout that produced it.
#[derive(Clone, Debug)]
pub struct LayoutEpoch {
    /// The adaptation epoch (0 = the synthesized layout, before any
    /// hot relayout).
    pub epoch: u64,
    /// The layout live at that epoch.
    pub layout: Layout,
}

impl LayoutEpoch {
    /// Whether this is the synthesized (pre-adaptation) layout.
    pub fn is_initial(&self) -> bool {
        self.epoch == 0
    }
}

impl fmt::Display for LayoutEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layout@epoch{} ({} instances)",
            self.epoch,
            self.layout.instances.len()
        )
    }
}

/// One deployment, one lifecycle: configure with the builder methods,
/// then consume with [`run`](Self::run) (batch),
/// [`serve`](Self::serve) (open-loop serving), or
/// [`start`](Self::start) (raw resident run).
///
/// See the [module docs](self) for the lifecycle diagram. All
/// [`RunOptions`] builders are mirrored here so the common flows never
/// need to name `RunOptions` at all; [`with_options`](Self::with_options)
/// swaps in a fully custom one.
pub struct DeploymentHandle {
    deployment: Deployment,
    options: RunOptions,
    scope: Option<ScopeConfig>,
}

impl DeploymentHandle {
    /// Bundles `compiler`'s program and lock plans with `plan`'s graph
    /// and layout into a runnable handle (epoch-0 layout).
    pub fn deploy(compiler: &Compiler, plan: &SynthesisResult) -> Self {
        Self::from_deployment(compiler.deploy(plan))
    }

    /// Wraps an already-assembled [`Deployment`] (hand-made layouts,
    /// tests).
    pub fn from_deployment(deployment: Deployment) -> Self {
        DeploymentHandle {
            deployment,
            options: RunOptions::new(),
            scope: None,
        }
    }

    /// Replaces the run options wholesale (escape hatch; the `with_*`
    /// mirrors cover the common flows).
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the batch run's startup payload (ignored by the resident
    /// terminals, which inject per request).
    pub fn with_startup(mut self, payload: NativePayload) -> Self {
        self.options = self.options.with_startup(payload);
        self
    }

    /// Attaches a telemetry session.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.options = self.options.with_telemetry(telemetry);
        self
    }

    /// Sets the work-stealing policy.
    pub fn with_steal(mut self, steal: StealPolicy) -> Self {
        self.options = self.options.with_steal(steal);
        self
    }

    /// Sets the quiescence protocol.
    pub fn with_quiescence(mut self, quiescence: QuiescencePolicy) -> Self {
        self.options = self.options.with_quiescence(quiescence);
        self
    }

    /// Arms the adaptive re-layout loop: the run carries a live Markov
    /// estimator and (under [`serve`](Self::serve)) an
    /// [`AdaptiveController`](bamboo_runtime::AdaptiveController) that
    /// hot-migrates groups when the re-estimated model says a better
    /// layout exists.
    pub fn with_adapt(mut self, policy: AdaptPolicy) -> Self {
        self.options = self.options.with_adapt(policy);
        self
    }

    /// Injects a deterministic fault schedule.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.options = self.options.with_faults(faults);
        self
    }

    /// Arms the live observability plane (`bamboo-scope`, DESIGN.md
    /// §17) for the [`serve`](Self::serve) terminal: sliding-window
    /// latency quantiles, shed rate, SLO burn-rate, and tail-based span
    /// sampling, snapshotted on demand through
    /// [`ServingSession::scope`]. Ignored by the batch terminals.
    ///
    /// A scope config set explicitly on the [`ServingOptions`] passed
    /// to `serve` wins over this one.
    pub fn with_scope(mut self, config: ScopeConfig) -> Self {
        self.scope = Some(config);
        self
    }

    /// The deployment artifact this handle will run.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The synthesized (epoch-0) layout artifact.
    pub fn planned_layout(&self) -> LayoutEpoch {
        LayoutEpoch {
            epoch: 0,
            layout: self.deployment.layout.clone(),
        }
    }

    /// Terminal: runs the deployment as one batch job (the whole run is
    /// a single request) and returns the executor's report.
    ///
    /// # Errors
    ///
    /// Executor failures ([`Error::Exec`], [`Error::CoreLost`]).
    pub fn run(self) -> Result<ThreadedReport, Error> {
        ThreadedExecutor::default()
            .run(&self.deployment, self.options)
            .map_err(Into::into)
    }

    /// Terminal: starts the deployment resident and hands back the raw
    /// [`ResidentRun`] — per-request injection, completions, and the
    /// [`RelayoutHandle`](bamboo_runtime::RelayoutHandle) for direct
    /// (non-controller) hot migration. Tests and custom drivers use
    /// this; most callers want [`serve`](Self::serve).
    ///
    /// # Errors
    ///
    /// [`Error::Exec`] when the deployment cannot start.
    pub fn start(self) -> Result<ResidentRun, Error> {
        ThreadedExecutor::default()
            .start(&self.deployment, self.options)
            .map_err(Into::into)
    }

    /// Terminal: starts the deployment resident behind the serving
    /// front-end (admission, pacing, micro-batching, latency
    /// accounting) and returns the live [`ServingSession`].
    ///
    /// # Errors
    ///
    /// [`Error::Exec`] when the deployment cannot start.
    pub fn serve(self, options: ServingOptions) -> Result<ServingSession, Error> {
        let mut options = options;
        if options.scope.is_none() {
            options.scope = self.scope;
        }
        let server = Server::start(
            &ThreadedExecutor::default(),
            &self.deployment,
            self.options,
            options,
        )?;
        Ok(ServingSession { server })
    }
}

/// A live serving deployment: offer traffic, snapshot the (possibly
/// adapting) layout, stop for the report.
///
/// Produced by [`DeploymentHandle::serve`]. Wraps [`Server`] with the
/// unified [`Error`] surface and the [`LayoutEpoch`] artifact;
/// [`server_mut`](Self::server_mut) reaches the full serving API.
pub struct ServingSession {
    server: Server,
}

impl ServingSession {
    /// Offers `total` open-loop arrivals from `process`; `make` builds
    /// each admitted request's root payload, keyed by request id.
    ///
    /// # Errors
    ///
    /// [`Error::Exec`] when the executor fails underneath,
    /// [`Error::RelayoutFailed`] when a stepped-pacing adaptation
    /// commit is rejected.
    pub fn serve(
        &mut self,
        process: &mut dyn ArrivalProcess,
        total: usize,
        make: impl FnMut(u64) -> NativePayload,
    ) -> Result<(), Error> {
        self.server.serve(process, total, make).map_err(Into::into)
    }

    /// Serves payloads submitted through a [`ChannelIngress`] until
    /// every handle is dropped and the queue drains.
    ///
    /// # Errors
    ///
    /// [`Error::Exec`] when the executor fails underneath.
    pub fn serve_channel(&mut self, ingress: ChannelIngress) -> Result<(), Error> {
        self.server.serve_channel(ingress).map_err(Into::into)
    }

    /// Waits until every admitted request completes.
    ///
    /// # Errors
    ///
    /// [`Error::Exec`] with the executor's first unrecoverable fault.
    pub fn await_idle(&mut self) -> Result<(), Error> {
        self.server.await_idle().map_err(Into::into)
    }

    /// Snapshot: the layout currently routing the deployment, stamped
    /// with its adaptation epoch. Epoch 0 until the first hot relayout
    /// commits.
    pub fn snapshot(&self) -> LayoutEpoch {
        LayoutEpoch {
            epoch: self.server.layout_epoch(),
            layout: self.server.current_layout(),
        }
    }

    /// Instances migrated by hot relayouts so far.
    pub fn relayouts(&self) -> u64 {
        self.server.relayouts()
    }

    /// The live observability handle (`None` unless the session was
    /// started with a scope config, via
    /// [`DeploymentHandle::with_scope`] or
    /// [`ServingOptions::with_scope`]). The handle is cloneable and
    /// snapshot-safe from other threads while the session keeps
    /// serving.
    pub fn scope(&self) -> Option<ScopeHandle> {
        self.server.scope_handle()
    }

    /// Requests admitted but not yet complete.
    pub fn outstanding(&self) -> usize {
        self.server.outstanding()
    }

    /// The underlying server (full serving API: admission stats,
    /// latency summaries, completions).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Mutable access to the underlying server.
    pub fn server_mut(&mut self) -> &mut Server {
        &mut self.server
    }

    /// Terminal: waits for outstanding requests, shuts the deployment
    /// down, and returns the combined report (admission, latency,
    /// relayout, and adaptation sections).
    ///
    /// # Errors
    ///
    /// [`Error::Exec`] with the executor's first unrecoverable fault.
    pub fn stop(self) -> Result<ServingReport, Error> {
        self.server.finish().map_err(Into::into)
    }
}
