#![warn(missing_docs)]

//! # bamboo
//!
//! A from-scratch Rust reproduction of **Bamboo: A Data-Centric,
//! Object-Oriented Approach to Many-core Software** (Jin Zhou and Brian
//! Demsky, PLDI 2010).
//!
//! Bamboo is a data-oriented extension of Java: programs are sets of
//! *tasks* with guards over the *abstract states* (flags, tags) of their
//! parameter objects; the runtime invokes a task whenever objects in
//! satisfying states exist. The compiler analyzes the task declarations
//! (dependence analysis), the imperative bodies (disjointness analysis),
//! and profile data to *synthesize* a many-core implementation: core
//! groups, replication, and a core mapping optimized by critical-path
//! directed simulated annealing — then the distributed runtime executes
//! it with transactional task semantics.
//!
//! This umbrella crate re-exports the whole system and provides the
//! [`Compiler`] driver. The subsystem crates:
//!
//! | crate | paper section | contents |
//! |---|---|---|
//! | [`lang`] | §2-§3 | DSL frontend, program model, native builder, interpreter |
//! | [`analysis`] | §4.1-§4.2 | ASTG/CSTG dependence analysis, disjointness analysis |
//! | [`profile`] | §4.3.1, §4.4 | profiles, deterministic Markov model |
//! | [`machine`] | §5 | TILEPro64-like processor descriptions |
//! | [`schedule`] | §4.3-§4.5 | synthesis: groups, transforms, mapping, simulator, DSA |
//! | [`runtime`] | §4.7 | object store, per-core schedulers, three executors |
//!
//! # Examples
//!
//! Compile, profile, synthesize for 62 cores, and execute (the paper's
//! end-to-end flow):
//!
//! ```
//! use bamboo::{Compiler, ExecConfig, MachineDescription, SynthesisOptions};
//! use rand::SeedableRng;
//!
//! let compiler = Compiler::from_source(
//!     "demo",
//!     r#"
//!     class StartupObject { flag initialstate; }
//!     class Work { flag ready; int v; Work(int v) { this.v = v; } }
//!     task startup(StartupObject s in initialstate) {
//!         for (int i = 0; i < 8; i = i + 1) {
//!             Work w = new Work(i){ ready := true };
//!         }
//!         taskexit(s: initialstate := false);
//!     }
//!     task run(Work w in ready) {
//!         int acc = 0;
//!         for (int i = 0; i < 100; i = i + 1) { acc = acc + i * w.v; }
//!         w.v = acc;
//!         taskexit(w: ready := false);
//!     }
//!     "#,
//! )?;
//! let (profile, single_core, ()) = compiler.profile_run(None, "original", |_| ())?;
//! let machine = MachineDescription::tilepro64();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
//! let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
//! let parallel = exec.run(None)?;
//! assert!(parallel.makespan < single_core.makespan);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod compiler;
pub mod error;
pub mod handle;
pub mod prelude;

pub use compiler::Compiler;
pub use error::Error;
pub use handle::{DeploymentHandle, LayoutEpoch, ServingSession};

// Subsystem crates, re-exported under stable names.
pub use bamboo_analysis as analysis;
pub use bamboo_lang as lang;
pub use bamboo_machine as machine;
pub use bamboo_profile as profile;
pub use bamboo_runtime as runtime;
pub use bamboo_schedule as schedule;
pub use bamboo_serving as serving;
pub use bamboo_telemetry as telemetry;

// The most commonly used items, re-exported flat.
pub use bamboo_analysis::{Cstg, DependenceAnalysis, DisjointnessAnalysis, LockPlan};
pub use bamboo_lang::builder::{BuiltProgram, ProgramBuilder};
pub use bamboo_lang::ids::{ClassId, ExitId, FlagId, ParamIdx, TagTypeId, TaskId};
pub use bamboo_lang::spec::{FlagExpr, FlagSet, ProgramSpec};
pub use bamboo_machine::{CoreId, MachineDescription};
pub use bamboo_profile::{Cycles, MarkovModel, Profile, ProfileCollector};
pub use bamboo_runtime::{
    body, AdaptPolicy, AdaptReport, AdaptiveController, Completion, CoreKill, CoreStall, CostModel,
    Deployment, ExecConfig, ExecError, FaultPlan, FaultSpec, KillTarget, NativeBody, NativePayload,
    PayloadTypeError, Program, QuiescencePolicy, RecoveryPolicy, RelayoutError, RelayoutHandle,
    RequestLedger, ResidentRun, RouterPolicy, RunOptions, RunReport, StealPolicy, ThreadedExecutor,
    ThreadedReport, VirtualExecutor,
};
pub use bamboo_schedule::{
    simulate, DsaOptions, ExecutionTrace, GroupGraph, Layout, Replication, SimOptions, SimResult,
    SynthesisOptions, SynthesisResult,
};
pub use bamboo_serving::{
    AdmissionControl, ArrivalProcess, Bursty, ChannelIngress, IngressHandle, Pacing, Poisson,
    ScopeConfig, ScopeHandle, ScopeSnapshot, Server, ServingError, ServingOptions, ServingReport,
    ShedReason, TokenBucket, Trace,
};
pub use bamboo_telemetry::{Telemetry, TelemetryReport, TimeUnit};
