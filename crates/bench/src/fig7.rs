//! Experiment E1: the paper's Figure 7 — speedup of the benchmarks on 62
//! cores.
//!
//! For each benchmark: run the serial baseline (the "1-core C version"),
//! the 1-core Bamboo version (which doubles as the profiling run),
//! synthesize a 62-core implementation from the profile, execute it on
//! the virtual-time executor, and report cycles, speedups, and the
//! language overhead — the exact columns of the paper's table.

use bamboo::{Compiler, ExecConfig, MachineDescription, SynthesisOptions};
use bamboo_apps::{Benchmark, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of the Figure 7 table.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: &'static str,
    /// 1-core C cycles.
    pub c_cycles: u64,
    /// 1-core Bamboo cycles.
    pub bamboo1_cycles: u64,
    /// 62-core Bamboo cycles.
    pub bamboo62_cycles: u64,
    /// Speedup of 62-core Bamboo over 1-core Bamboo.
    pub speedup_vs_bamboo: f64,
    /// Speedup of 62-core Bamboo over 1-core C.
    pub speedup_vs_c: f64,
    /// 1-core Bamboo overhead over C, percent.
    pub overhead_pct: f64,
    /// Whether both Bamboo runs reproduced the serial result bit-exactly.
    pub verified: bool,
    /// The paper's reported speedup over 1-core Bamboo, for comparison.
    pub paper_speedup_vs_bamboo: f64,
    /// The paper's reported speedup over 1-core C.
    pub paper_speedup_vs_c: f64,
    /// The paper's reported overhead.
    pub paper_overhead_pct: f64,
}

/// Runs the experiment for one benchmark.
pub fn run_benchmark(
    bench: &dyn Benchmark,
    scale: Scale,
    machine: &MachineDescription,
    seed: u64,
) -> Fig7Row {
    let serial = bench.serial(scale);
    let compiler: Compiler = bench.compiler(scale);
    let (profile, one_core, ok1) = compiler
        .profile_run(None, "original", |exec| {
            bench.parallel_checksum(&compiler, exec) == serial.checksum
        })
        .expect("single-core run succeeds");
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = compiler.synthesize(&profile, machine, &SynthesisOptions::default(), &mut rng);
    let mut exec = compiler.executor(&plan.graph, &plan.layout, machine, ExecConfig::default());
    let many_core = exec.run(None).expect("many-core run succeeds");
    let ok_n = bench.parallel_checksum(&compiler, &exec) == serial.checksum;
    let paper = bench.paper();
    Fig7Row {
        name: bench.name(),
        c_cycles: serial.cycles,
        bamboo1_cycles: one_core.makespan,
        bamboo62_cycles: many_core.makespan,
        speedup_vs_bamboo: one_core.makespan as f64 / many_core.makespan as f64,
        speedup_vs_c: serial.cycles as f64 / many_core.makespan as f64,
        overhead_pct: (one_core.makespan as f64 / serial.cycles as f64 - 1.0) * 100.0,
        verified: ok1 && ok_n,
        paper_speedup_vs_bamboo: paper.speedup_vs_bamboo,
        paper_speedup_vs_c: paper.speedup_vs_c,
        paper_overhead_pct: paper.overhead_pct,
    }
}

/// Runs the full table.
pub fn run_all(scale: Scale, machine: &MachineDescription, seed: u64) -> Vec<Fig7Row> {
    bamboo_apps::all()
        .iter()
        .map(|b| run_benchmark(b.as_ref(), scale, machine, seed))
        .collect()
}

/// Formats rows as the paper's table (plus paper-reported columns).
pub fn format_table(rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "                 Clock Cycles (1e8 cyc)              Speedup          Overhead\n",
    );
    out.push_str(
        "Benchmark    1-Core C  1-Core Bb  62-Core Bb   vs Bb (paper)   vs C (paper)   Bb (paper)  verified\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>8.1}  {:>9.1}  {:>10.2}   {:>5.1} ({:>4.1})   {:>5.1} ({:>4.1})   {:>4.1}% ({:>4.1}%)  {}\n",
            r.name,
            r.c_cycles as f64 / 1e8,
            r.bamboo1_cycles as f64 / 1e8,
            r.bamboo62_cycles as f64 / 1e8,
            r.speedup_vs_bamboo,
            r.paper_speedup_vs_bamboo,
            r.speedup_vs_c,
            r.paper_speedup_vs_c,
            r.overhead_pct,
            r.paper_overhead_pct,
            if r.verified { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_row_is_consistent() {
        let bench = bamboo_apps::series::Series;
        let machine = MachineDescription::n_cores(8);
        let row = run_benchmark(&bench, Scale::Small, &machine, 7);
        assert!(row.verified);
        assert!(row.speedup_vs_bamboo > 2.0);
        assert!(row.speedup_vs_c > 2.0);
        assert!(row.overhead_pct > 0.0 && row.overhead_pct < 15.0);
        let table = format_table(&[row]);
        assert!(table.contains("Series"));
    }
}
