//! Experiment E3: the paper's Figure 10 — efficiency of directed
//! simulated annealing.
//!
//! On a 16-core target (as in the paper): enumerate candidate
//! implementations exhaustively (up to a configurable cap; the full space
//! is astronomically large for some benchmarks, and the paper itself
//! skips Tracking for this reason), simulate each, and histogram the
//! estimated execution times. Then run DSA from many random starting
//! points and histogram the results it converges to. The paper's claim:
//! good layouts are rare in the candidate space, yet DSA reaches the best
//! layout from ≥98% of random starts.

use bamboo::schedule::{
    compute_replication, enumerate_mappings, optimize, random_layouts, scc_tree_transform,
    simulate, DsaOptions, MappingOptions, SimOptions,
};
use bamboo::Cycles;
use bamboo::{Compiler, MachineDescription};
use bamboo_apps::{Benchmark, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the experiment.
#[derive(Clone, Debug)]
pub struct Fig10Options {
    /// Core count of the target (the paper uses 16).
    pub cores: usize,
    /// Cap on exhaustively enumerated candidates.
    pub enumerate_cap: usize,
    /// Number of random DSA starting points (the paper uses 1000).
    pub dsa_starts: usize,
    /// Workload scale.
    pub scale: Scale,
}

impl Default for Fig10Options {
    fn default() -> Self {
        Fig10Options {
            cores: 16,
            enumerate_cap: 20_000,
            dsa_starts: 200,
            scale: Scale::Original,
        }
    }
}

/// Results for one benchmark.
#[derive(Clone, Debug)]
pub struct Fig10Result {
    /// Benchmark name.
    pub name: &'static str,
    /// Estimated makespans of the enumerated candidates.
    pub candidates: Vec<Cycles>,
    /// Whether `candidates` covers the whole space or hit the cap.
    pub exhaustive: bool,
    /// Best makespans reached by DSA, one per random start.
    pub dsa_results: Vec<Cycles>,
}

impl Fig10Result {
    /// Best candidate makespan observed anywhere.
    pub fn best(&self) -> Cycles {
        self.candidates
            .iter()
            .chain(self.dsa_results.iter())
            .copied()
            .min()
            .unwrap_or(0)
    }

    /// Fraction of enumerated candidates within `tol` of the best.
    pub fn candidate_hit_rate(&self, tol: f64) -> f64 {
        hit_rate(&self.candidates, self.best(), tol)
    }

    /// Fraction of DSA runs within `tol` of the best.
    pub fn dsa_hit_rate(&self, tol: f64) -> f64 {
        hit_rate(&self.dsa_results, self.best(), tol)
    }
}

fn hit_rate(values: &[Cycles], best: Cycles, tol: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let cutoff = best as f64 * (1.0 + tol);
    values.iter().filter(|&&v| (v as f64) <= cutoff).count() as f64 / values.len() as f64
}

/// Runs the experiment for one benchmark.
pub fn run_benchmark(bench: &dyn Benchmark, opts: &Fig10Options, seed: u64) -> Fig10Result {
    let compiler: Compiler = bench.compiler(opts.scale);
    let (profile, _, ()) = compiler
        .profile_run(None, "original", |_| ())
        .expect("profiling run succeeds");
    let machine = MachineDescription::n_cores(opts.cores);
    let graph = scc_tree_transform(&compiler.graph_with_profile(&profile));
    let replication = compute_replication(&compiler.program.spec, &graph, &profile, opts.cores);
    let spec = &compiler.program.spec;

    // Exhaustive (capped) enumeration + simulation.
    let mut candidates = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let yielded = enumerate_mappings(
        &graph,
        &replication,
        &MappingOptions {
            core_count: opts.cores,
            limit: opts.enumerate_cap,
            skip_probability: 0.0,
        },
        &mut rng,
        |layout| {
            let result = simulate(
                spec,
                &graph,
                &layout,
                &profile,
                &machine,
                &SimOptions::default(),
            );
            candidates.push(result.makespan);
        },
    );
    let exhaustive = yielded < opts.enumerate_cap;

    // DSA from random starting points.
    let dsa_opts = DsaOptions {
        max_iterations: 40,
        continue_probability: 0.9,
        ..DsaOptions::default()
    };
    let mut dsa_results = Vec::with_capacity(opts.dsa_starts);
    for i in 0..opts.dsa_starts {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x5EED << 8) ^ i as u64);
        let start = random_layouts(&graph, &replication, opts.cores, 1, &mut rng);
        let (_, result, _) = optimize(spec, &graph, &profile, &machine, start, &dsa_opts, &mut rng);
        dsa_results.push(result.makespan);
    }

    Fig10Result {
        name: bench.name(),
        candidates,
        exhaustive,
        dsa_results,
    }
}

/// Renders an ASCII histogram of `values` (relative percentages, like the
/// paper's bar charts).
pub fn histogram(values: &[Cycles], buckets: usize) -> String {
    if values.is_empty() {
        return "(no data)\n".to_string();
    }
    let min = *values.iter().min().expect("non-empty");
    let max = *values.iter().max().expect("non-empty");
    let span = (max - min).max(1);
    let mut counts = vec![0usize; buckets];
    for &v in values {
        let b = (((v - min) as u128 * buckets as u128) / (span as u128 + 1)) as usize;
        counts[b.min(buckets - 1)] += 1;
    }
    let total = values.len() as f64;
    let mut out = String::new();
    for (i, &count) in counts.iter().enumerate() {
        let lo = min + span * i as u64 / buckets as u64;
        let pct = count as f64 / total * 100.0;
        let bar = "#".repeat((pct / 2.0).round() as usize);
        out.push_str(&format!(
            "{:>10.2}e8 {:>6.2}% {}\n",
            lo as f64 / 1e8,
            pct,
            bar
        ));
    }
    out
}

/// Formats one benchmark's result like a panel of Figure 10.
pub fn format_result(result: &Fig10Result, tol: f64) -> String {
    let mut out = format!(
        "== {} ==\ncandidates: {}{}  best={:.2}e8  within {:.0}% of best: {:.2}%\n",
        result.name,
        result.candidates.len(),
        if result.exhaustive {
            " (exhaustive)"
        } else {
            " (capped sample)"
        },
        result.best() as f64 / 1e8,
        tol * 100.0,
        result.candidate_hit_rate(tol) * 100.0,
    );
    out.push_str("distribution of all candidate implementations:\n");
    out.push_str(&histogram(&result.candidates, 16));
    out.push_str(&format!(
        "DSA from {} random starts: within {:.0}% of best: {:.2}%  (within 5%: {:.2}%)\n",
        result.dsa_results.len(),
        tol * 100.0,
        result.dsa_hit_rate(tol) * 100.0,
        result.dsa_hit_rate(0.05) * 100.0,
    ));
    out.push_str("distribution of DSA results:\n");
    out.push_str(&histogram(&result.dsa_results, 16));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsa_beats_random_candidates_on_small_series() {
        let bench = bamboo_apps::series::Series;
        let opts = Fig10Options {
            cores: 4,
            enumerate_cap: 400,
            dsa_starts: 5,
            scale: Scale::Small,
        };
        let result = run_benchmark(&bench, &opts, 3);
        assert!(!result.candidates.is_empty());
        assert_eq!(result.dsa_results.len(), 5);
        // DSA reaches within 5% of best far more reliably than a random
        // candidate does.
        assert!(result.dsa_hit_rate(0.05) >= result.candidate_hit_rate(0.05));
        assert!(
            result.dsa_hit_rate(0.05) >= 0.6,
            "hit rate {}",
            result.dsa_hit_rate(0.05)
        );
    }

    #[test]
    fn histogram_covers_all_values() {
        let h = histogram(&[100, 200, 300, 300], 4);
        assert_eq!(h.lines().count(), 4);
        assert!(h.contains("50.00%"));
    }
}
