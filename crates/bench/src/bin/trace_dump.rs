//! Exports a `chrome://tracing` timeline and a metrics dump for one of
//! the paper's six benchmarks, using the telemetry subsystem.
//!
//! The trace file holds two processes: the scheduling simulator's
//! *predicted* timeline (pid 1) and the virtual executor's *observed*
//! telemetry recording (pid 2) — load it in `chrome://tracing` or
//! Perfetto to compare them side by side (the paper's Fig. 6/9 view).
//!
//! Usage: `cargo run -p bamboo-bench --bin trace_dump [-- <benchmark> [cores]]`
//!
//! `<benchmark>` is one of the names `bamboo_apps::all()` reports
//! (default `kmeans`); `cores` defaults to 8. Output goes to
//! `results/trace_<benchmark>.json` and `results/metrics_<benchmark>.json`.
//!
//! With `--request <id|all>` the tool instead serves a short
//! deterministic (stepped-pacing, fixed-seed) open-loop session with
//! telemetry recording, reconstructs the per-request span tree(s), and
//! prints the causal forest with the exact latency partition (compute /
//! lock-wait / queue-wait / routing / idle) — the offline view of the
//! `bamboo-scope` live plane (DESIGN.md §17).

use bamboo::telemetry::analyze;
use bamboo::telemetry::chrome::{ChromeTrace, PID_OBSERVED, PID_PREDICTED};
use bamboo::telemetry::summary;
use bamboo::{
    simulate, DeploymentHandle, ExecConfig, MachineDescription, Pacing, Poisson, ServingOptions,
    SimOptions, SynthesisOptions, Telemetry,
};
use bamboo_apps::{all, by_name, Benchmark, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Requests served by the `--request` session — enough traffic that
/// requests overlap and the queue/lock/routing components show up.
const REQUEST_DUMP_REQS: usize = 32;

/// `--request` mode: serve a deterministic session and print the span
/// tree(s) for `which` (a request id, or `all`).
fn dump_request(bench: &dyn Benchmark, cores: usize, which: &str) {
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "trace_dump", |_| ())
        .expect("profile run");
    let machine = MachineDescription::n_cores(cores);
    let mut rng = StdRng::seed_from_u64(17);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    // Workers plus the serving driver's own ring.
    let telemetry = Telemetry::enabled(cores + 1);
    let mut session = DeploymentHandle::deploy(&compiler, &plan)
        .with_telemetry(telemetry.clone())
        .serve(ServingOptions::new().with_pacing(Pacing::Stepped))
        .expect("server starts");
    let mut arrivals = Poisson::new(2_000.0, 17);
    session
        .serve(&mut arrivals, REQUEST_DUMP_REQS, |_| Box::new(()))
        .expect("serving run");
    let report = session.stop().expect("serving finish");
    let observed = telemetry.report();

    let completed = analyze::scope::completed_requests(&observed);
    let wanted: Vec<u64> = if which == "all" {
        completed.clone()
    } else {
        match which.parse::<u64>() {
            Ok(id) => vec![id],
            Err(_) => {
                eprintln!("invalid request id `{which}`; expected a number or `all`");
                std::process::exit(2);
            }
        }
    };
    let trees = analyze::span_trees(&observed, &wanted);
    if trees.is_empty() {
        eprintln!("request(s) {wanted:?} not found in the session; completed ids: {completed:?}");
        std::process::exit(1);
    }
    println!(
        "{} on {cores} cores: {} requests served, {} span tree(s) reconstructed (unit: ns)\n",
        bench.name(),
        report.completed,
        trees.len(),
    );
    for tree in &trees {
        print!("{}", tree.render("ns"));
    }
}

fn main() {
    let mut positional = Vec::new();
    let mut request: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--request" {
            match it.next() {
                Some(v) => request = Some(v),
                None => {
                    eprintln!("--request requires a value (a request id or `all`)");
                    std::process::exit(2);
                }
            }
        } else {
            positional.push(arg);
        }
    }
    let name = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "kmeans".to_string());
    let cores: usize = match positional.get(1) {
        None => 8,
        Some(c) => match c.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("invalid core count `{c}`; expected a positive integer");
                std::process::exit(2);
            }
        },
    };
    let Some(bench) = by_name(&name) else {
        let names: Vec<&str> = all().iter().map(|b| b.name()).collect();
        eprintln!("unknown benchmark `{name}`; expected one of {names:?}");
        std::process::exit(2);
    };
    if let Some(which) = request {
        dump_request(bench.as_ref(), cores, &which);
        return;
    }

    // Profile, synthesize a layout, and predict its timeline.
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "trace_dump", |_| ())
        .expect("profile run");
    let machine = MachineDescription::n_cores(cores);
    let mut rng = StdRng::seed_from_u64(17);
    let telemetry = Telemetry::enabled(cores);
    let plan = compiler.synthesize_with_telemetry(
        &profile,
        &machine,
        &SynthesisOptions::default(),
        &mut rng,
        &telemetry,
    );
    let sim = simulate(
        &compiler.program.spec,
        &plan.graph,
        &plan.layout,
        &profile,
        &machine,
        &SimOptions {
            collect_trace: true,
            ..SimOptions::default()
        },
    );

    // Execute the plan with telemetry recording.
    let config = ExecConfig {
        telemetry: telemetry.clone(),
        ..ExecConfig::default()
    };
    let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, config);
    let run = exec.run(None).expect("benchmark runs");
    let report = telemetry.report();

    // Predicted timeline next to the observed recording, one document.
    let mut trace = ChromeTrace::new();
    if let Some(predicted) = &sim.trace {
        trace.push_execution_trace(
            PID_PREDICTED,
            "predicted (simulator)",
            predicted,
            &compiler.program.spec,
        );
    }
    trace.push_report(
        PID_OBSERVED,
        &format!("{name} (observed)"),
        &report,
        &compiler.program.spec,
    );

    std::fs::create_dir_all("results").expect("create results/");
    let trace_path = format!("results/trace_{name}.json");
    std::fs::write(&trace_path, trace.finish()).expect("write trace");
    let metrics_path = format!("results/metrics_{name}.json");
    std::fs::write(&metrics_path, summary::metrics_json(&report.metrics)).expect("write metrics");

    println!(
        "{name} on {cores} cores: predicted makespan {} cycles, observed {} cycles ({} tasks, {} transfers)",
        sim.makespan, run.makespan, run.invocations, run.transfers
    );
    print!("{}", summary::per_core_table(&report));
    println!("wrote {trace_path} and {metrics_path}");
}
