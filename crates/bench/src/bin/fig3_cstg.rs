//! Regenerates the paper's Figure 3: the profile-annotated combined state
//! transition graph of the keyword-counting example, as Graphviz dot.
//!
//! Usage: `cargo run -p bamboo-bench --bin fig3_cstg [> fig3.dot]`

use bamboo_bench::figures;

fn main() {
    let (compiler, profile) = figures::keyword_setup(4);
    print!("{}", figures::fig3_annotated_cstg(&compiler, &profile));
}
