//! Regenerates the paper's Figure 8: the task flow of the Tracking
//! benchmark, as Graphviz dot.
//!
//! Usage: `cargo run -p bamboo-bench --bin fig8_taskflow [> fig8.dot]`

use bamboo_bench::figures;

fn main() {
    print!("{}", figures::fig8_tracking_taskflow());
}
