//! Regenerates the paper's Figure 11: generality of synthesized
//! implementations — layouts synthesized from the original profile versus
//! the doubled profile, both executing the doubled input.
//!
//! Usage: `cargo run --release -p bamboo-bench --bin fig11_generality`

use bamboo::MachineDescription;
use bamboo_bench::fig11;

fn main() {
    let machine = MachineDescription::tilepro64();
    println!("== Figure 11: generality of synthesized implementations ==\n");
    let rows = fig11::run_all(&machine, 42);
    print!("{}", fig11::format_table(&rows));
}
