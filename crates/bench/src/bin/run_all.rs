//! Drives the whole evaluation: every table and figure, written to
//! `results/` (creating the directory if needed).
//!
//! Usage:
//!   cargo run --release -p bamboo-bench --bin run_all [--full]
//!
//! Without `--full`, Figure 10 runs at a reduced budget (100 starts,
//! cap 5000); with it, the EXPERIMENTS.md configuration (500 starts,
//! cap 50000) is used.

use bamboo::MachineDescription;
use bamboo_apps::Scale;
use bamboo_bench::{fig10, fig11, fig7, fig9, figures};
use std::fs;
use std::io::Write as _;

fn save(name: &str, contents: &str) {
    fs::create_dir_all("results").expect("results dir");
    let path = format!("results/{name}");
    let mut file = fs::File::create(&path).expect("create result file");
    file.write_all(contents.as_bytes())
        .expect("write result file");
    println!("wrote {path}");
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let machine = MachineDescription::tilepro64();

    let rows = fig7::run_all(Scale::Original, &machine, 42);
    let table = fig7::format_table(&rows);
    println!("\n== Figure 7 ==\n{table}");
    save("fig7.txt", &table);

    let rows = fig9::run_all(Scale::Original, &machine, 42);
    let table = fig9::format_table(&rows);
    println!("\n== Figure 9 ==\n{table}");
    save("fig9.txt", &table);

    let rows = fig11::run_all(&machine, 42);
    let table = fig11::format_table(&rows);
    println!("\n== Figure 11 ==\n{table}");
    save("fig11.txt", &table);

    let opts = if full {
        fig10::Fig10Options {
            dsa_starts: 500,
            enumerate_cap: 50_000,
            ..Default::default()
        }
    } else {
        fig10::Fig10Options {
            dsa_starts: 100,
            enumerate_cap: 5_000,
            ..Default::default()
        }
    };
    let mut out = String::new();
    for bench in bamboo_apps::all() {
        if bench.name() == "Tracking" {
            out.push_str(
                "== Tracking ==\nskipped (exhaustive enumeration prohibitive, as in the paper)\n\n",
            );
            continue;
        }
        let result = fig10::run_benchmark(bench.as_ref(), &opts, 42);
        out.push_str(&fig10::format_result(&result, 0.01));
        out.push('\n');
    }
    println!("\n== Figure 10 ==\n{out}");
    save("fig10.txt", &out);

    let (compiler, profile) = figures::keyword_setup(4);
    save(
        "fig3.dot",
        &figures::fig3_annotated_cstg(&compiler, &profile),
    );
    save(
        "fig4.txt",
        &figures::fig4_quad_layout(&compiler, &profile, 42),
    );
    save("fig6.txt", &figures::fig6_trace(&compiler, &profile));
    save("fig8.dot", &figures::fig8_tracking_taskflow());
    println!("\nall experiments complete; see results/ and EXPERIMENTS.md");
}
