//! Regenerates the paper's Figure 6: a simulated execution trace of the
//! keyword-counting example with its critical path marked.
//!
//! Usage: `cargo run -p bamboo-bench --bin fig6_trace`

use bamboo_bench::figures;

fn main() {
    let (compiler, profile) = figures::keyword_setup(4);
    print!("{}", figures::fig6_trace(&compiler, &profile));
}
