//! Regenerates the paper's Figure 9: accuracy of the scheduling simulator
//! against real (virtual-time) execution, 1-core and 62-core, plus the
//! aggregate-Markov ablation column.
//!
//! Usage: `cargo run --release -p bamboo-bench --bin fig9_sim_accuracy`

use bamboo::MachineDescription;
use bamboo_apps::Scale;
use bamboo_bench::fig9;

fn main() {
    let machine = MachineDescription::tilepro64();
    println!("== Figure 9: accuracy of the scheduling simulator ==\n");
    let rows = fig9::run_all(Scale::Original, &machine, 42);
    print!("{}", fig9::format_table(&rows));
    println!("\n(AggrErr: error of the aggregate count-matching Markov model without");
    println!(" exit-sequence replay — the ablation showing why replay matters.)");
}
