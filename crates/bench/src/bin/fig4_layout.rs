//! Regenerates the paper's Figure 4: a synthesized candidate layout of
//! the keyword-counting example on a quad-core processor.
//!
//! Usage: `cargo run -p bamboo-bench --bin fig4_layout`

use bamboo_bench::figures;

fn main() {
    let (compiler, profile) = figures::keyword_setup(4);
    print!("{}", figures::fig4_quad_layout(&compiler, &profile, 42));
}
