//! `bamboo-doctor`: causal critical-path attribution and regression
//! gating over observed telemetry.
//!
//! Two modes:
//!
//! * **diagnose** (default): runs a benchmark under the threaded
//!   executor with telemetry enabled *and* under the virtual executor
//!   with trace collection, then prints the reconstruction stats, the
//!   per-core time-breakdown ledger, the observed critical path, and
//!   the ranked findings — including predicted-vs-observed divergence
//!   against the virtual trace. `--json PATH` additionally writes the
//!   machine-readable diagnosis.
//!
//!   `cargo run --release -p bamboo-bench --bin bamboo-doctor -- kmeans --cores 8`
//!
//! * **`--check`**: the CI regression gate. Re-measures every benchmark
//!   recorded in `BENCH_threaded.json` (same machine model, scale, and
//!   synthesis seed as the recording harness in
//!   `crates/bench/benches/threaded.rs`), evaluates the tolerance
//!   checks in `bamboo::telemetry::analyze::gate`, writes the verdict
//!   JSON artifact, and exits non-zero if any check fails.
//!
//!   `cargo run --release -p bamboo-bench --bin bamboo-doctor -- --check --out doctor_verdict.json`

use bamboo::telemetry::analyze::{self, gate};
use bamboo::{
    Compiler, Deployment, ExecConfig, MachineDescription, RunOptions, SynthesisOptions, Telemetry,
    ThreadedExecutor,
};
use bamboo_apps::{by_name, Benchmark, Scale};
use rand::SeedableRng;
use std::process::ExitCode;

/// Synthesis seed shared with the recording harness — the deployment
/// (and therefore the invocation count) must match the baseline's.
const SEED: u64 = 42;
/// Measured reps per configuration in `--check` mode. Fewer than the
/// recording harness (15): the gate's floors are generous, so a cheap
/// best-of-5 estimate is plenty.
const CHECK_REPS: usize = 5;

struct Args {
    check: bool,
    bench: String,
    cores: usize,
    json_out: Option<String>,
    baseline_path: String,
}

fn parse_args() -> Result<Args, String> {
    let default_baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_threaded.json");
    let mut args = Args {
        check: false,
        bench: "kmeans".to_string(),
        cores: 8,
        json_out: None,
        baseline_path: default_baseline.to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match arg.as_str() {
            "--check" => args.check = true,
            "--cores" => {
                args.cores =
                    value("--cores")?.parse().map_err(|e| format!("--cores: {e}"))?;
            }
            "--json" | "--out" => args.json_out = Some(value(&arg)?),
            "--baseline" => args.baseline_path = value("--baseline")?,
            "--help" | "-h" => {
                return Err(concat!(
                    "usage: bamboo-doctor [BENCH] [--cores N] [--json PATH]\n",
                    "       bamboo-doctor --check [--baseline PATH] [--out PATH]"
                )
                .to_string());
            }
            name if !name.starts_with('-') => args.bench = name.to_string(),
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

/// Profiles, synthesizes (fixed seed), and deploys `bench` for `machine`.
fn deployment_for(
    bench: &dyn Benchmark,
    machine: &MachineDescription,
) -> (Compiler, Deployment) {
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler.profile_run(None, "doctor", |_| ()).expect("profile run");
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let plan = compiler.synthesize(&profile, machine, &SynthesisOptions::default(), &mut rng);
    let deployment = compiler.deploy(&plan);
    (compiler, deployment)
}

/// One telemetry-enabled threaded run; returns the recorded report and
/// the executor's run report.
fn observed_run(
    deployment: &Deployment,
    cores: usize,
) -> (bamboo::TelemetryReport, bamboo::ThreadedReport) {
    let telemetry = Telemetry::enabled(cores);
    let options = RunOptions { telemetry: telemetry.clone(), ..RunOptions::default() };
    let run = ThreadedExecutor::default().run(deployment, options).expect("observed run");
    (telemetry.report(), run)
}

/// Best wall time (µs), invocation count, and lock retries over `reps`
/// telemetry-free runs of one configuration.
fn measure(deployment: &Deployment, baseline: bool, reps: usize) -> (f64, u64, u64) {
    let exec = ThreadedExecutor::default();
    let options = || if baseline { RunOptions::baseline() } else { RunOptions::default() };
    let _ = exec.run(deployment, options()).expect("warmup run");
    let mut best_us = f64::INFINITY;
    let mut invocations = 0;
    let mut retries = 0;
    for _ in 0..reps {
        let report = exec.run(deployment, options()).expect("measured run");
        best_us = best_us.min(report.wall.as_secs_f64() * 1e6);
        invocations = report.invocations;
        retries = report.lock_retries;
    }
    (best_us, invocations, retries)
}

fn diagnose_mode(args: &Args) -> Result<(), String> {
    let bench = by_name(&args.bench).ok_or(format!("unknown benchmark {:?}", args.bench))?;
    let machine = MachineDescription::n_cores(args.cores);
    let (compiler, deployment) = deployment_for(bench.as_ref(), &machine);

    println!(
        "bamboo-doctor: diagnosing {} on {} cores (threaded observed vs virtual predicted)\n",
        bench.name(),
        args.cores,
    );
    let (report, run) = observed_run(&deployment, args.cores);

    // The virtual executor's trace over the same deployment is the
    // prediction the observed run is compared against.
    let config = ExecConfig { collect_trace: true, ..ExecConfig::default() };
    let mut virtual_exec =
        compiler.executor(&deployment.graph, &deployment.layout, &machine, config);
    let predicted = virtual_exec.run(None).expect("virtual run").trace.expect("trace requested");

    let diagnosis = analyze::diagnose(&report, Some(&predicted));
    print!("{}", diagnosis.summary(Some(&compiler.program.spec)));
    println!(
        "\nthreaded run: {} invocations, {} steals, {} lock retries, {} router contentions, wall {:?}",
        run.invocations, run.steals, run.lock_retries, run.router_contention, run.wall,
    );
    if let Some(path) = &args.json_out {
        std::fs::write(path, diagnosis.json()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn check_mode(args: &Args) -> Result<bool, String> {
    let text = std::fs::read_to_string(&args.baseline_path)
        .map_err(|e| format!("read {}: {e}", args.baseline_path))?;
    let baseline = gate::parse_baseline(&text)?;
    let machine = MachineDescription::tilepro64();
    if machine.core_count() as u64 != baseline.machine_cores {
        eprintln!(
            "warning: baseline recorded for {} cores, gating against {}",
            baseline.machine_cores,
            machine.core_count(),
        );
    }

    let mut observations = Vec::new();
    for base in &baseline.benches {
        let Some(bench) = by_name(&base.name) else {
            eprintln!("warning: baseline bench {:?} not in the app registry; skipping", base.name);
            continue;
        };
        let (_compiler, deployment) = deployment_for(bench.as_ref(), &machine);
        let (base_us, base_inv, _) = measure(&deployment, true, CHECK_REPS);
        let (opt_us, invocations, lock_retries) = measure(&deployment, false, CHECK_REPS);
        let throughput = invocations as f64 / (opt_us / 1e3);
        let speedup = (invocations as f64 / opt_us) / (base_inv as f64 / base_us);

        // One telemetry-enabled run for the causal health check: the
        // observed critical path must spend some of its span computing.
        let (report, _) = observed_run(&deployment, machine.core_count());
        let diagnosis = analyze::diagnose(&report, None);
        let compute_share = diagnosis.path.as_ref().map_or(0.0, |p| p.compute_share());

        println!(
            "measured {:<12} {invocations} invocations, {lock_retries} retries, best {opt_us:.0}µs, \
             {throughput:.2} inv/ms, {speedup:.2}x, compute share {compute_share:.2}",
            base.name,
        );
        observations.push(gate::Observation {
            name: base.name.clone(),
            invocations: invocations as f64,
            lock_retries: lock_retries as f64,
            best_wall_us: opt_us,
            throughput,
            speedup,
            compute_share,
        });
    }

    let verdict = gate::evaluate(&baseline, &observations);
    println!("\n{}", verdict.table());
    let out = args.json_out.as_deref().unwrap_or("doctor_verdict.json");
    std::fs::write(out, verdict.json()).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(verdict.pass())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if args.check { check_mode(&args) } else { diagnose_mode(&args).map(|()| true) };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bamboo-doctor: {msg}");
            ExitCode::FAILURE
        }
    }
}
