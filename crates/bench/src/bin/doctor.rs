//! `bamboo-doctor`: causal critical-path attribution and regression
//! gating over observed telemetry.
//!
//! Two modes:
//!
//! * **diagnose** (default): runs a benchmark under the threaded
//!   executor with telemetry enabled *and* under the virtual executor
//!   with trace collection, then prints the reconstruction stats, the
//!   per-core time-breakdown ledger, the observed critical path, and
//!   the ranked findings — including predicted-vs-observed divergence
//!   against the virtual trace. `--json PATH` additionally writes the
//!   machine-readable diagnosis.
//!
//!   `cargo run --release -p bamboo-bench --bin bamboo-doctor -- kmeans --cores 8`
//!
//! * **`--check`**: the CI regression gate. Re-measures every benchmark
//!   recorded in `BENCH_threaded.json` (same machine model, scale, and
//!   synthesis seed as the recording harness in
//!   `crates/bench/benches/threaded.rs`), evaluates the tolerance
//!   checks in `bamboo::telemetry::analyze::gate`, writes the verdict
//!   JSON artifact, and exits non-zero if any check fails. When
//!   `BENCH_dsa.json` is present (recorded by
//!   `crates/bench/benches/dsa.rs`), the gate additionally re-runs
//!   serial and parallel synthesis for every recorded benchmark and
//!   appends the `dsa-*` checks: determinism (parallel == serial
//!   makespan), exact makespan/simulation-count match against the
//!   recording, and a host-aware wall-speedup floor. When
//!   `BENCH_serving.json` is present (recorded by
//!   `crates/bench/benches/serving.rs`), the gate additionally serves a
//!   short fixed-seed open-loop probe per recorded app and appends the
//!   `serving-*` checks — exact request accounting (admitted ==
//!   completed), zero shedding at admission and on the router, p99
//!   within a host-slack band of the recorded SLO, and a completion-
//!   throughput floor — summarized in the verdict JSON's `serving`
//!   section.
//!
//!   `cargo run --release -p bamboo-bench --bin bamboo-doctor -- --check --out doctor_verdict.json`
//!
//! * **`--check --chaos`**: the fault-injection gate. Every benchmark
//!   runs clean once and twice under the seeded default fault plan
//!   (`FaultSpec::default_plan`); the chaos checks require termination,
//!   a byte-identical fault schedule across the two same-seed runs, and
//!   faulty output identical to the fault-free run. `--chaos-seed` and
//!   `--chaos-cores` pick the plan seed and thread count (the CI matrix
//!   sweeps both).
//!
//!   `cargo run --release -p bamboo-bench --bin bamboo-doctor -- --check --chaos --chaos-seed 7 --chaos-cores 16`
//!
//!   `--chaos` also composes with diagnose mode: the observed run
//!   executes under the fault plan and the diagnosis includes the
//!   `fault.*`-attribution findings plus the rendered schedule.
//!
//! * **`--adapt-smoke`**: the adaptive re-layout smoke gate. Serves one
//!   app (default `kmeans`) under a shifting bursty mix from a
//!   deliberately stale layout — every instance squeezed onto core 0 —
//!   with the re-layout controller armed under stepped pacing, then
//!   requires at least one committed hot relayout, exact request
//!   accounting, and post-relayout model divergence no worse than pre
//!   (`adapt-improves-or-holds`). Writes the same verdict JSON artifact
//!   as `--check`. When `BENCH_serving.json` carries recorded `adapt`
//!   sections, `--check` additionally runs this probe per recorded app
//!   and appends the full `adapt-*` check set.
//!
//!   `cargo run --release -p bamboo-bench --bin bamboo-doctor -- --adapt-smoke --out doctor_verdict.json`
//!
//! * **`--scope-smoke`**: the live-observability smoke gate. Serves one
//!   app (default `kmeans`) under stepped pacing with telemetry *and*
//!   the scope plane armed, reconstructs the span tree of every
//!   tail-sampled request, and requires exact snapshot accounting
//!   (arrived = admitted + shed, completed = admitted), at least one
//!   sampled tree, and an exact latency partition per tree
//!   (`scope-partition-exact`). Writes the verdict JSON plus the scope
//!   snapshot (`--snapshot-out`, default `scope_snapshot.json`) and its
//!   Prometheus rendering alongside, as CI artifacts. When
//!   `BENCH_serving.json` carries recorded `scope` sections, `--check`
//!   additionally runs this probe per recorded app and appends the full
//!   `scope-*` check set (including the recorded ≤3% overhead budget).
//!
//!   `cargo run --release -p bamboo-bench --bin bamboo-doctor -- --scope-smoke --out doctor_verdict.json`

use bamboo::telemetry::analyze::{self, gate};
use bamboo::{
    AdaptPolicy, Bursty, Compiler, CoreId, Deployment, DeploymentHandle, DsaOptions, ExecConfig,
    FaultSpec, MachineDescription, Pacing, Poisson, RunOptions, ScopeConfig, ScopeSnapshot, Server,
    ServingOptions, SynthesisOptions, Telemetry, ThreadedExecutor,
};
use bamboo_apps::{all, by_name, Benchmark, Scale};
use rand::SeedableRng;
use std::process::ExitCode;

/// Synthesis seed shared with the recording harness — the deployment
/// (and therefore the invocation count) must match the baseline's.
const SEED: u64 = 42;
/// Measured reps per configuration in `--check` mode. Fewer than the
/// recording harness (15): the gate's floors are generous, so a cheap
/// best-of-5 estimate is plenty.
const CHECK_REPS: usize = 5;
/// Synthesis reps per configuration for the DSA checks. The makespan and
/// simulation-count checks are exact on the first rep (synthesis is
/// deterministic); extra reps only sharpen the wall-speedup estimate,
/// whose floor is generous.
const DSA_CHECK_REPS: usize = 2;
/// Requests per serving probe run in `--check` mode.
const SERVING_CHECK_REQS: usize = 64;
/// Serving probe offered load as a fraction of the recorded sustainable
/// rate — far enough under it that a healthy build completes everything
/// without shedding even on a much slower host, high enough that the
/// completion throughput clears the gate's floor.
const SERVING_CHECK_LOAD_FRACTION: f64 = 0.25;
/// Requests per adaptive-probe run (`--adapt-smoke` and the `adapt-*`
/// checks of `--check`). Enough for the controller to warm past its
/// invocation gate and commit a relayout off the stale layout; under
/// stepped pacing the decision sequence is deterministic, so more
/// requests buy nothing.
const ADAPT_CHECK_REQS: usize = 32;
/// Requests per scope-probe run (`--scope-smoke` and the `scope-*`
/// checks of `--check`). Enough to fill several tumbling windows and
/// populate the slowest-K + reservoir samplers; under stepped pacing
/// the sampling decisions are deterministic.
const SCOPE_CHECK_REQS: usize = 48;

struct Args {
    check: bool,
    adapt_smoke: bool,
    scope_smoke: bool,
    chaos: bool,
    chaos_seed: u64,
    chaos_cores: usize,
    bench: String,
    cores: usize,
    json_out: Option<String>,
    snapshot_out: String,
    baseline_path: String,
    dsa_baseline_path: String,
    serving_baseline_path: String,
}

fn parse_args() -> Result<Args, String> {
    let default_baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_threaded.json");
    let default_dsa_baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dsa.json");
    let default_serving_baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let mut args = Args {
        check: false,
        adapt_smoke: false,
        scope_smoke: false,
        chaos: false,
        chaos_seed: 7,
        chaos_cores: 16,
        bench: "kmeans".to_string(),
        cores: 8,
        json_out: None,
        snapshot_out: "scope_snapshot.json".to_string(),
        baseline_path: default_baseline.to_string(),
        dsa_baseline_path: default_dsa_baseline.to_string(),
        serving_baseline_path: default_serving_baseline.to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match arg.as_str() {
            "--check" => args.check = true,
            "--adapt-smoke" => args.adapt_smoke = true,
            "--scope-smoke" => args.scope_smoke = true,
            "--chaos" => args.chaos = true,
            "--chaos-seed" => {
                args.chaos_seed = value("--chaos-seed")?
                    .parse()
                    .map_err(|e| format!("--chaos-seed: {e}"))?;
            }
            "--chaos-cores" => {
                args.chaos_cores = value("--chaos-cores")?
                    .parse()
                    .map_err(|e| format!("--chaos-cores: {e}"))?;
            }
            "--cores" => {
                args.cores = value("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?;
            }
            "--json" | "--out" => args.json_out = Some(value(&arg)?),
            "--snapshot-out" => args.snapshot_out = value("--snapshot-out")?,
            "--baseline" => args.baseline_path = value("--baseline")?,
            "--dsa-baseline" => args.dsa_baseline_path = value("--dsa-baseline")?,
            "--serving-baseline" => args.serving_baseline_path = value("--serving-baseline")?,
            "--help" | "-h" => {
                return Err(concat!(
                    "usage: bamboo-doctor [BENCH] [--cores N] [--json PATH] [--chaos] [--chaos-seed N]\n",
                    "       bamboo-doctor --check [--baseline PATH] [--dsa-baseline PATH]\n",
                    "                      [--serving-baseline PATH] [--out PATH]\n",
                    "       bamboo-doctor --check --chaos [--chaos-seed N] [--chaos-cores N] [--out PATH]\n",
                    "       bamboo-doctor --adapt-smoke [BENCH] [--cores N] [--out PATH]\n",
                    "       bamboo-doctor --scope-smoke [BENCH] [--cores N] [--out PATH] [--snapshot-out PATH]"
                )
                .to_string());
            }
            name if !name.starts_with('-') => args.bench = name.to_string(),
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

/// Profiles, synthesizes (fixed seed), and deploys `bench` for `machine`.
fn deployment_for(bench: &dyn Benchmark, machine: &MachineDescription) -> (Compiler, Deployment) {
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "doctor", |_| ())
        .expect("profile run");
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let plan = compiler.synthesize(&profile, machine, &SynthesisOptions::default(), &mut rng);
    let deployment = compiler.deploy(&plan);
    (compiler, deployment)
}

/// One telemetry-enabled threaded run, optionally under an injected
/// fault plan; returns the recorded report and the executor's run
/// report.
fn observed_run(
    deployment: &Deployment,
    cores: usize,
    faults: Option<FaultSpec>,
) -> (bamboo::TelemetryReport, bamboo::ThreadedReport) {
    let telemetry = Telemetry::enabled(cores);
    let options = RunOptions {
        telemetry: telemetry.clone(),
        faults,
        ..RunOptions::default()
    };
    let run = ThreadedExecutor::default()
        .run(deployment, options)
        .expect("observed run");
    (telemetry.report(), run)
}

/// Best wall time (µs), invocation count, and lock retries over `reps`
/// telemetry-free runs of one configuration.
fn measure(deployment: &Deployment, baseline: bool, reps: usize) -> (f64, u64, u64) {
    let exec = ThreadedExecutor::default();
    let options = || {
        if baseline {
            RunOptions::baseline()
        } else {
            RunOptions::default()
        }
    };
    let _ = exec.run(deployment, options()).expect("warmup run");
    let mut best_us = f64::INFINITY;
    let mut invocations = 0;
    let mut retries = 0;
    for _ in 0..reps {
        let report = exec.run(deployment, options()).expect("measured run");
        best_us = best_us.min(report.wall.as_secs_f64() * 1e6);
        invocations = report.invocations;
        retries = report.lock_retries;
    }
    (best_us, invocations, retries)
}

/// Re-synthesizes `bench` serially (1 thread, memoization off) and in
/// parallel (defaults), timing both, for the `dsa-*` gate checks. Uses
/// the same scale and seed as the recording harness in
/// `crates/bench/benches/dsa.rs`.
fn dsa_observation(bench: &dyn Benchmark, machine: &MachineDescription) -> gate::DsaObservation {
    let compiler = bench.compiler(Scale::Original);
    let (profile, _, ()) = compiler
        .profile_run(None, "doctor", |_| ())
        .expect("profile run");
    let run = |opts: &SynthesisOptions| {
        let mut best_us = f64::INFINITY;
        let mut plan = None;
        for _ in 0..DSA_CHECK_REPS {
            let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
            let t0 = std::time::Instant::now();
            plan = Some(compiler.synthesize(&profile, machine, opts, &mut rng));
            best_us = best_us.min(t0.elapsed().as_secs_f64() * 1e6);
        }
        (best_us, plan.expect("at least one rep"))
    };
    let serial_opts = SynthesisOptions {
        dsa: DsaOptions {
            memoize: false,
            ..DsaOptions::default()
        },
        ..SynthesisOptions::default()
    }
    .with_threads(1);
    let (serial_us, serial_plan) = run(&serial_opts);
    let (parallel_us, parallel_plan) = run(&SynthesisOptions::default());
    gate::DsaObservation {
        name: bench.name().to_string(),
        serial_makespan: serial_plan.estimate.makespan as f64,
        parallel_makespan: parallel_plan.estimate.makespan as f64,
        simulations: parallel_plan.stats.simulations as f64,
        wall_speedup: serial_us / parallel_us,
    }
}

/// Serves a short fixed-seed open-loop Poisson probe against `bench` at
/// a fraction of its recorded sustainable load, for the `serving-*`
/// gate checks. Completion throughput is measured from first arrival to
/// drain (excluding worker spawn and shutdown).
fn serving_observation(
    bench: &dyn Benchmark,
    machine: &MachineDescription,
    base: &gate::ServingBaselineBench,
) -> Result<gate::ServingObservation, String> {
    let (_compiler, deployment) = deployment_for(bench, machine);
    let exec = ThreadedExecutor::default();
    // Warmup rep (thread spawn paths, allocator).
    exec.run(&deployment, RunOptions::default())
        .map_err(|e| format!("{}: warmup failed: {e}", bench.name()))?;
    let offered_rps = (base.max_sustainable_rps * SERVING_CHECK_LOAD_FRACTION).max(200.0);
    let mut server = Server::start(
        &exec,
        &deployment,
        RunOptions::default(),
        ServingOptions::new(),
    )
    .map_err(|e| format!("{}: server start failed: {e}", bench.name()))?;
    let mut arrivals = Poisson::new(offered_rps, SEED);
    let t0 = std::time::Instant::now();
    server
        .serve(&mut arrivals, SERVING_CHECK_REQS, |_| Box::new(()))
        .map_err(|e| format!("{}: probe serve failed: {e}", bench.name()))?;
    server
        .await_idle()
        .map_err(|e| format!("{}: probe drain failed: {e}", bench.name()))?;
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let report = server
        .finish()
        .map_err(|e| format!("{}: probe finish failed: {e}", bench.name()))?;
    Ok(gate::ServingObservation {
        name: bench.name().to_string(),
        offered_rps,
        completed_rps: report.completed as f64 / elapsed,
        admitted: report.admitted as f64,
        completed: report.completed as f64,
        shed: report.shed as f64,
        router_shed: report.executor.router_shed as f64,
        p99_us: report.latency_us.p99() as f64,
    })
}

/// Serves a deterministic adaptive probe against `bench` for the
/// `adapt-*` gate checks: stepped pacing, fixed seeds, a shifting
/// bursty mix, and a deliberately stale starting layout (every instance
/// squeezed onto core 0) the armed controller should hot-migrate off.
fn adapt_observation(
    bench: &dyn Benchmark,
    machine: &MachineDescription,
) -> Result<gate::AdaptObservation, String> {
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "doctor", |_| ())
        .map_err(|e| format!("{}: profile failed: {e}", bench.name()))?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let plan = compiler.synthesize(&profile, machine, &SynthesisOptions::default(), &mut rng);
    let mut deployment = compiler.deploy(&plan);
    for inst in &mut deployment.layout.instances {
        inst.core = CoreId::new(0);
    }
    let policy = AdaptPolicy::new(machine.clone())
        .with_min_invocations(16)
        .with_baseline(profile)
        .with_seed(SEED);
    let mut session = DeploymentHandle::from_deployment(deployment)
        .with_adapt(policy)
        .serve(ServingOptions::new().with_pacing(Pacing::Stepped))
        .map_err(|e| format!("{}: adaptive probe start failed: {e}", bench.name()))?;
    let mut arrivals = Bursty::new(400.0, 4_000.0, 0.2, SEED);
    session
        .serve(&mut arrivals, ADAPT_CHECK_REQS, |_| Box::new(()))
        .map_err(|e| format!("{}: adaptive probe serve failed: {e}", bench.name()))?;
    let report = session
        .stop()
        .map_err(|e| format!("{}: adaptive probe finish failed: {e}", bench.name()))?;
    let adapt = report.adapt.clone().unwrap_or_default();
    Ok(gate::AdaptObservation {
        name: bench.name().to_string(),
        relayouts: adapt.relayouts as f64,
        admitted: report.admitted as f64,
        completed: report.completed as f64,
        pre_divergence: adapt.pre_divergence,
        post_divergence: adapt.post_divergence,
    })
}

/// `--adapt-smoke`: serve one app under the shifting mix with the
/// controller armed and gate on the live `adapt-*` checks alone (no
/// recorded baseline needed).
fn adapt_smoke_mode(args: &Args) -> Result<bool, String> {
    let bench = by_name(&args.bench).ok_or(format!("unknown benchmark {:?}", args.bench))?;
    let machine = MachineDescription::n_cores(args.cores);
    println!(
        "bamboo-doctor: adaptive re-layout smoke on {} ({} cores, {} requests)\n",
        bench.name(),
        args.cores,
        ADAPT_CHECK_REQS,
    );
    let obs = adapt_observation(bench.as_ref(), &machine)?;
    println!(
        "adapted {:<12} {}/{} completed, {} relayout(s), divergence {} -> {}",
        obs.name,
        obs.completed,
        obs.admitted,
        obs.relayouts,
        obs.pre_divergence
            .map_or("unmeasured".to_string(), |d| format!("{d:.4}")),
        obs.post_divergence
            .map_or("unmeasured".to_string(), |d| format!("{d:.4}")),
    );
    let verdict = gate::Verdict {
        checks: gate::evaluate_adapt_probe(&[obs]),
    };
    println!("\n{}", verdict.table());
    let out = args.json_out.as_deref().unwrap_or("doctor_verdict.json");
    std::fs::write(out, verdict.json()).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(verdict.pass())
}

/// Serves a deterministic scope probe against `bench` for the `scope-*`
/// gate checks: stepped pacing, fixed seeds, telemetry and the live
/// observability plane both armed. Returns the gate observation, the
/// final scope snapshot, and the span trees materialized for its
/// tail-sampled request ids.
fn scope_observation(
    bench: &dyn Benchmark,
    machine: &MachineDescription,
) -> Result<
    (
        gate::ScopeObservation,
        ScopeSnapshot,
        Vec<analyze::SpanTree>,
    ),
    String,
> {
    let (_compiler, deployment) = deployment_for(bench, machine);
    // Workers plus the serving driver's own ring.
    let telemetry = Telemetry::enabled(machine.core_count() + 1);
    let scope = ScopeConfig::default()
        .with_window(std::time::Duration::from_millis(5))
        .with_slo(50_000, 0.99)
        .with_sampling(4, 4);
    let mut session = DeploymentHandle::from_deployment(deployment)
        .with_telemetry(telemetry.clone())
        .with_scope(scope)
        .serve(ServingOptions::new().with_pacing(Pacing::Stepped))
        .map_err(|e| format!("{}: scope probe start failed: {e}", bench.name()))?;
    let mut arrivals = Poisson::new(2_000.0, SEED);
    session
        .serve(&mut arrivals, SCOPE_CHECK_REQS, |_| Box::new(()))
        .map_err(|e| format!("{}: scope probe serve failed: {e}", bench.name()))?;
    let report = session
        .stop()
        .map_err(|e| format!("{}: scope probe finish failed: {e}", bench.name()))?;
    let snapshot = report
        .scope
        .clone()
        .ok_or_else(|| format!("{}: scope plane armed but no snapshot", bench.name()))?;
    let observed = telemetry.report();
    let trees = analyze::span_trees(&observed, &snapshot.sampled_requests());
    let partition_exact = !trees.is_empty()
        && trees
            .iter()
            .all(|t| t.breakdown.component_sum() == t.breakdown.total);
    let t = &snapshot.totals;
    Ok((
        gate::ScopeObservation {
            name: bench.name().to_string(),
            arrived: t.arrivals as f64,
            admitted: t.admitted as f64,
            completed: t.completed as f64,
            shed: t.shed as f64,
            trees: trees.len() as f64,
            partition_exact,
        },
        snapshot,
        trees,
    ))
}

/// `--scope-smoke`: serve one app with the scope plane armed and gate
/// on the live `scope-*` checks alone (no recorded baseline needed).
/// Writes the scope snapshot and its Prometheus rendering next to the
/// verdict, as CI artifacts.
fn scope_smoke_mode(args: &Args) -> Result<bool, String> {
    let bench = by_name(&args.bench).ok_or(format!("unknown benchmark {:?}", args.bench))?;
    let machine = MachineDescription::n_cores(args.cores);
    println!(
        "bamboo-doctor: live observability smoke on {} ({} cores, {} requests)\n",
        bench.name(),
        args.cores,
        SCOPE_CHECK_REQS,
    );
    let (obs, snapshot, trees) = scope_observation(bench.as_ref(), &machine)?;
    println!(
        "scoped {:<12} {} arrived = {} admitted + {} shed, {} completed, {} sampled tree(s), partition {}",
        obs.name,
        obs.arrived,
        obs.admitted,
        obs.shed,
        obs.completed,
        trees.len(),
        if obs.partition_exact { "exact" } else { "INEXACT" },
    );
    println!();
    for tree in &trees {
        print!("{}", tree.render("ns"));
    }
    let verdict = gate::Verdict {
        checks: gate::evaluate_scope_probe(&[obs]),
    };
    println!("\n{}", verdict.table());
    let out = args.json_out.as_deref().unwrap_or("doctor_verdict.json");
    std::fs::write(out, verdict.json()).map_err(|e| format!("write {out}: {e}"))?;
    let snap_out = &args.snapshot_out;
    std::fs::write(snap_out, snapshot.to_json()).map_err(|e| format!("write {snap_out}: {e}"))?;
    let prom_out = format!("{}.prom", snap_out.trim_end_matches(".json"));
    std::fs::write(&prom_out, snapshot.to_prometheus())
        .map_err(|e| format!("write {prom_out}: {e}"))?;
    println!("wrote {out}, {snap_out}, {prom_out}");
    Ok(verdict.pass())
}

fn diagnose_mode(args: &Args) -> Result<(), String> {
    let bench = by_name(&args.bench).ok_or(format!("unknown benchmark {:?}", args.bench))?;
    let machine = MachineDescription::n_cores(args.cores);
    let (compiler, deployment) = deployment_for(bench.as_ref(), &machine);

    println!(
        "bamboo-doctor: diagnosing {} on {} cores (threaded observed vs virtual predicted){}\n",
        bench.name(),
        args.cores,
        if args.chaos { " under chaos" } else { "" },
    );
    let faults = args.chaos.then(|| FaultSpec::default_plan(args.chaos_seed));
    let (report, run) = observed_run(&deployment, args.cores, faults);

    // The virtual executor's trace over the same deployment is the
    // prediction the observed run is compared against.
    let config = ExecConfig {
        collect_trace: true,
        ..ExecConfig::default()
    };
    let mut virtual_exec =
        compiler.executor(&deployment.graph, &deployment.layout, &machine, config);
    let predicted = virtual_exec
        .run(None)
        .expect("virtual run")
        .trace
        .expect("trace requested");

    let diagnosis = analyze::diagnose(&report, Some(&predicted));
    print!("{}", diagnosis.summary(Some(&compiler.program.spec)));
    println!(
        "\nthreaded run: {} invocations, {} steals, {} lock retries, {} router contentions, wall {:?}",
        run.invocations, run.steals, run.lock_retries, run.router_contention, run.wall,
    );
    if let Some(schedule) = &run.fault_schedule {
        println!(
            "\nfault schedule (seed {}): {} fault(s) injected, {} recovery action(s)\n{}",
            args.chaos_seed, run.faults_injected, run.recovery_actions, schedule,
        );
    }
    if let Some(path) = &args.json_out {
        std::fs::write(path, diagnosis.json()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Runs one benchmark clean and twice under the same seeded fault plan,
/// producing the observation the chaos gate checks evaluate.
fn chaos_observation(
    bench: &dyn Benchmark,
    machine: &MachineDescription,
    seed: u64,
) -> Result<gate::ChaosObservation, String> {
    let (compiler, deployment) = deployment_for(bench, machine);
    let exec = ThreadedExecutor::default();
    let clean = exec
        .run(&deployment, RunOptions::default())
        .map_err(|e| format!("{}: clean run failed: {e}", bench.name()))?;
    let clean_checksum = bench.threaded_checksum(&compiler, &clean);

    // Two independent runs with identical seed and thread count: the
    // determinism contract requires byte-identical schedules, and
    // recovery transparency requires both outputs to match the clean
    // run. A faulty run that errors out still yields an observation —
    // `terminated: false` fails the `chaos-terminates` check rather
    // than aborting the whole gate.
    let faulty = || {
        exec.run(
            &deployment,
            RunOptions::default().with_faults(FaultSpec::default_plan(seed)),
        )
    };
    let mut terminated = true;
    let mut observe = |label: &str| match faulty() {
        Ok(run) => (
            run.fault_schedule.clone().unwrap_or_default(),
            bench.threaded_checksum(&compiler, &run),
            run.faults_injected,
        ),
        Err(err) => {
            eprintln!("warning: {} faulty run {label} failed: {err}", bench.name());
            terminated = false;
            (String::new(), 0, 0)
        }
    };
    let (schedule_a, faulty_checksum, faults_injected) = observe("a");
    let (schedule_b, faulty_checksum_b, _) = observe("b");
    Ok(gate::ChaosObservation {
        name: bench.name().to_string(),
        schedule_a,
        schedule_b,
        clean_checksum,
        faulty_checksum,
        faulty_checksum_b,
        terminated,
        faults_injected,
    })
}

/// `--check --chaos`: the fault-injection gate. Every benchmark must
/// terminate under the default fault plan, reproduce the same fault
/// schedule for the same seed, and produce output identical to its
/// fault-free run.
fn chaos_check_mode(args: &Args) -> Result<bool, String> {
    let machine = MachineDescription::n_cores(args.chaos_cores);
    println!(
        "bamboo-doctor: chaos gate on {} cores, seed {}\n",
        args.chaos_cores, args.chaos_seed,
    );
    let mut observations = Vec::new();
    for bench in all() {
        let obs = chaos_observation(bench.as_ref(), &machine, args.chaos_seed)?;
        println!(
            "chaos {:<12} clean {:#018x} faulty {:#018x}/{:#018x}, {} fault(s) injected",
            obs.name,
            obs.clean_checksum,
            obs.faulty_checksum,
            obs.faulty_checksum_b,
            obs.faults_injected,
        );
        observations.push(obs);
    }
    let verdict = gate::Verdict {
        checks: gate::evaluate_chaos(&observations),
    };
    println!("\n{}", verdict.table());
    let out = args.json_out.as_deref().unwrap_or("doctor_verdict.json");
    std::fs::write(out, verdict.json()).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(verdict.pass())
}

fn check_mode(args: &Args) -> Result<bool, String> {
    let text = std::fs::read_to_string(&args.baseline_path)
        .map_err(|e| format!("read {}: {e}", args.baseline_path))?;
    let baseline = gate::parse_baseline(&text)?;
    let machine = MachineDescription::tilepro64();
    if machine.core_count() as u64 != baseline.machine_cores {
        eprintln!(
            "warning: baseline recorded for {} cores, gating against {}",
            baseline.machine_cores,
            machine.core_count(),
        );
    }

    let mut observations = Vec::new();
    for base in &baseline.benches {
        let Some(bench) = by_name(&base.name) else {
            eprintln!(
                "warning: baseline bench {:?} not in the app registry; skipping",
                base.name
            );
            continue;
        };
        let (_compiler, deployment) = deployment_for(bench.as_ref(), &machine);
        let (base_us, base_inv, _) = measure(&deployment, true, CHECK_REPS);
        let (opt_us, invocations, lock_retries) = measure(&deployment, false, CHECK_REPS);
        let throughput = invocations as f64 / (opt_us / 1e3);
        let speedup = (invocations as f64 / opt_us) / (base_inv as f64 / base_us);

        // One telemetry-enabled run for the causal health check: the
        // observed critical path must spend some of its span computing.
        let (report, _) = observed_run(&deployment, machine.core_count(), None);
        let diagnosis = analyze::diagnose(&report, None);
        let compute_share = diagnosis.path.as_ref().map_or(0.0, |p| p.compute_share());

        println!(
            "measured {:<12} {invocations} invocations, {lock_retries} retries, best {opt_us:.0}µs, \
             {throughput:.2} inv/ms, {speedup:.2}x, compute share {compute_share:.2}",
            base.name,
        );
        observations.push(gate::Observation {
            name: base.name.clone(),
            invocations: invocations as f64,
            lock_retries: lock_retries as f64,
            best_wall_us: opt_us,
            throughput,
            speedup,
            compute_share,
        });
    }

    let mut verdict = gate::evaluate(&baseline, &observations);

    // DSA synthesis checks, gated on the recording from the `dsa` bench
    // harness. A missing recording is a warning, not a failure, so the
    // gate still works on checkouts that never ran the full bench.
    match std::fs::read_to_string(&args.dsa_baseline_path) {
        Ok(text) => {
            let dsa_baseline = gate::parse_dsa_baseline(&text)?;
            let host_threads = std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1);
            let mut dsa_observations = Vec::new();
            for base in &dsa_baseline.benches {
                let Some(bench) = by_name(&base.name) else {
                    eprintln!(
                        "warning: DSA baseline bench {:?} not in the app registry; skipping",
                        base.name,
                    );
                    continue;
                };
                let obs = dsa_observation(bench.as_ref(), &machine);
                println!(
                    "synthesized {:<12} makespan {} ({} sims, serial/parallel wall {:.2}x)",
                    base.name, obs.parallel_makespan, obs.simulations, obs.wall_speedup,
                );
                dsa_observations.push(obs);
            }
            verdict.checks.extend(gate::evaluate_dsa(
                &dsa_baseline,
                &dsa_observations,
                host_threads,
            ));
        }
        Err(err) => eprintln!(
            "warning: no DSA baseline at {} ({err}); skipping dsa-* checks",
            args.dsa_baseline_path,
        ),
    }

    // Serving checks, gated on the recording from the `serving` bench
    // harness (same missing-recording-is-a-warning contract as DSA).
    match std::fs::read_to_string(&args.serving_baseline_path) {
        Ok(text) => {
            let serving_baseline = gate::parse_serving_baseline(&text)?;
            let serving_machine =
                MachineDescription::n_cores(serving_baseline.machine_cores as usize);
            let mut serving_observations = Vec::new();
            for base in &serving_baseline.benches {
                let Some(bench) = by_name(&base.name) else {
                    eprintln!(
                        "warning: serving baseline bench {:?} not in the app registry; skipping",
                        base.name,
                    );
                    continue;
                };
                let obs = serving_observation(bench.as_ref(), &serving_machine, base)?;
                println!(
                    "served {:<12} {}/{} completed at {:.0} rps offered, p99 {:.0}µs, {} shed",
                    base.name, obs.completed, obs.admitted, obs.offered_rps, obs.p99_us, obs.shed,
                );
                serving_observations.push(obs);
            }
            verdict.checks.extend(gate::evaluate_serving(
                &serving_baseline,
                &serving_observations,
            ));

            // Adaptive re-layout checks, gated on recorded `adapt`
            // sections (absent on baselines from before the loop
            // existed — nothing to gate then).
            let mut adapt_observations = Vec::new();
            for base in &serving_baseline.benches {
                if base.adapt.is_none() {
                    continue;
                }
                let Some(bench) = by_name(&base.name) else {
                    continue;
                };
                let obs = adapt_observation(bench.as_ref(), &serving_machine)?;
                println!(
                    "adapted {:<12} {}/{} completed, {} relayout(s), divergence {} -> {}",
                    base.name,
                    obs.completed,
                    obs.admitted,
                    obs.relayouts,
                    obs.pre_divergence
                        .map_or("unmeasured".to_string(), |d| format!("{d:.4}")),
                    obs.post_divergence
                        .map_or("unmeasured".to_string(), |d| format!("{d:.4}")),
                );
                adapt_observations.push(obs);
            }
            verdict
                .checks
                .extend(gate::evaluate_adapt(&serving_baseline, &adapt_observations));

            // Live-observability checks, gated on recorded `scope`
            // sections (absent on baselines from before the scope
            // plane existed — nothing to gate then).
            let mut scope_observations = Vec::new();
            for base in &serving_baseline.benches {
                if base.scope.is_none() {
                    continue;
                }
                let Some(bench) = by_name(&base.name) else {
                    continue;
                };
                let (obs, _, _) = scope_observation(bench.as_ref(), &serving_machine)?;
                println!(
                    "scoped {:<12} {} arrived = {} admitted + {} shed, {} sampled tree(s), partition {}",
                    base.name,
                    obs.arrived,
                    obs.admitted,
                    obs.shed,
                    obs.trees,
                    if obs.partition_exact { "exact" } else { "INEXACT" },
                );
                scope_observations.push(obs);
            }
            verdict
                .checks
                .extend(gate::evaluate_scope(&serving_baseline, &scope_observations));
        }
        Err(err) => eprintln!(
            "warning: no serving baseline at {} ({err}); skipping serving-* checks",
            args.serving_baseline_path,
        ),
    }

    println!("\n{}", verdict.table());
    let out = args.json_out.as_deref().unwrap_or("doctor_verdict.json");
    std::fs::write(out, verdict.json()).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(verdict.pass())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if args.adapt_smoke {
        adapt_smoke_mode(&args)
    } else if args.scope_smoke {
        scope_smoke_mode(&args)
    } else {
        match (args.check, args.chaos) {
            (true, true) => chaos_check_mode(&args),
            (true, false) => check_mode(&args),
            (false, _) => diagnose_mode(&args).map(|()| true),
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bamboo-doctor: {msg}");
            ExitCode::FAILURE
        }
    }
}
