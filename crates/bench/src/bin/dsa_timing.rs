//! Reports synthesis (DSA) wall time and search statistics per benchmark,
//! the §5.1 numbers ("1.3 minutes for Tracking, 10 seconds for KMeans,
//! under 0.2 seconds for the rest" on the authors' 2-GHz Xeon), for both
//! the serial (1 thread, memoization off) and the default parallel,
//! memoized configuration — the two legs synthesize identical plans.
//!
//! Usage: `cargo run --release -p bamboo-bench --bin dsa_timing`

use bamboo::{DsaOptions, MachineDescription, SynthesisOptions};
use bamboo_apps::Scale;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let machine = MachineDescription::tilepro64();
    let serial_opts = SynthesisOptions {
        dsa: DsaOptions {
            memoize: false,
            ..DsaOptions::default()
        },
        ..SynthesisOptions::default()
    }
    .with_threads(1);
    println!("== Synthesis time per benchmark (62-core target) ==\n");
    println!(
        "Benchmark     serial wall  parallel wall  speedup  simulations  cache hits  est. makespan"
    );
    for bench in bamboo_apps::all() {
        let compiler = bench.compiler(Scale::Original);
        let (profile, _, ()) = compiler
            .profile_run(None, "original", |_| ())
            .expect("profiling run succeeds");
        let time = |opts: &SynthesisOptions| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            let t0 = Instant::now();
            let plan = compiler.synthesize(&profile, &machine, opts, &mut rng);
            (t0.elapsed(), plan)
        };
        let (serial_wall, serial_plan) = time(&serial_opts);
        let (parallel_wall, plan) = time(&SynthesisOptions::default());
        assert_eq!(
            plan.estimate.makespan, serial_plan.estimate.makespan,
            "determinism"
        );
        println!(
            "{:<12} {:>11.3?}  {:>13.3?}  {:>6.2}x  {:>11}  {:>10}  {:>11.2}e8",
            bench.name(),
            serial_wall,
            parallel_wall,
            serial_wall.as_secs_f64() / parallel_wall.as_secs_f64(),
            plan.stats.simulations,
            plan.stats.cache_hits,
            plan.estimate.makespan as f64 / 1e8
        );
    }
}
