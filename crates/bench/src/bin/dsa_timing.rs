//! Reports synthesis (DSA) wall time and search statistics per benchmark,
//! the §5.1 numbers ("1.3 minutes for Tracking, 10 seconds for KMeans,
//! under 0.2 seconds for the rest" on the authors' 2-GHz Xeon).
//!
//! Usage: `cargo run --release -p bamboo-bench --bin dsa_timing`

use bamboo::{MachineDescription, SynthesisOptions};
use bamboo_apps::Scale;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let machine = MachineDescription::tilepro64();
    println!("== Synthesis time per benchmark (62-core target) ==\n");
    println!("Benchmark     wall time   iterations  simulations  est. makespan");
    for bench in bamboo_apps::all() {
        let compiler = bench.compiler(Scale::Original);
        let (profile, _, ()) =
            compiler.profile_run(None, "original", |_| ()).expect("profiling run succeeds");
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let t0 = Instant::now();
        let plan =
            compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
        let wall = t0.elapsed();
        println!(
            "{:<12} {:>9.3?}  {:>10}  {:>11}  {:>10.2}e8",
            bench.name(),
            wall,
            plan.stats.iterations,
            plan.stats.simulations,
            plan.estimate.makespan as f64 / 1e8
        );
    }
}
