//! Regenerates the paper's Figure 10: the distribution of candidate
//! implementations on 16 cores versus the distribution of DSA results
//! from random starting points.
//!
//! Usage:
//!   cargo run --release -p bamboo-bench --bin fig10_dsa \[starts\] \[enumerate_cap\]
//!
//! Defaults: 200 starts, 20000 enumerated candidates (the paper used 1000
//! starts and full enumeration; pass `1000 100000` for a closer run).
//! Tracking is skipped, as in the paper (its space is prohibitively large).

use bamboo_bench::fig10::{format_result, run_benchmark, Fig10Options};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut opts = Fig10Options::default();
    if let Some(s) = args.get(1) {
        opts.dsa_starts = s.parse().expect("starts must be a number");
    }
    if let Some(s) = args.get(2) {
        opts.enumerate_cap = s.parse().expect("cap must be a number");
    }
    println!(
        "== Figure 10: DSA efficiency on {} cores ({} starts, cap {}) ==\n",
        opts.cores, opts.dsa_starts, opts.enumerate_cap
    );
    for bench in bamboo_apps::all() {
        if bench.name() == "Tracking" {
            println!("== Tracking ==\nskipped: exhaustive enumeration prohibitively expensive (as in the paper)\n");
            continue;
        }
        let result = run_benchmark(bench.as_ref(), &opts, 42);
        println!("{}", format_result(&result, 0.01));
    }
}
