//! Scaling curves: speedup of each benchmark versus core count — the
//! natural companion to the paper's single 62-core data point (Figure 7).
//! For every benchmark and every core count, a fresh implementation is
//! synthesized from the same profile and executed on the virtual-time
//! machine; results are verified against the serial baseline.
//!
//! Usage: `cargo run --release -p bamboo-bench --bin scaling [cores...]`
//! (default core counts: 1 2 4 8 16 31 62)

use bamboo::{ExecConfig, MachineDescription, SynthesisOptions};
use bamboo_apps::Scale;
use rand::SeedableRng;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("core counts must be numbers"))
        .collect();
    let cores: Vec<usize> = if args.is_empty() {
        vec![1, 2, 4, 8, 16, 31, 62]
    } else {
        args
    };

    println!("== Speedup vs core count (over 1-core Bamboo; input Scale::Original) ==\n");
    print!("{:<12}", "Benchmark");
    for c in &cores {
        print!(" {c:>7}");
    }
    println!();

    for bench in bamboo_apps::all() {
        let serial = bench.serial(Scale::Original);
        let compiler = bench.compiler(Scale::Original);
        let (profile, one_core, ok) = compiler
            .profile_run(None, "original", |exec| {
                bench.parallel_checksum(&compiler, exec) == serial.checksum
            })
            .expect("profiling run succeeds");
        assert!(ok, "{} failed verification", bench.name());
        print!("{:<12}", bench.name());
        for &n in &cores {
            if n == 1 {
                print!(" {:>7.2}", 1.0);
                continue;
            }
            let machine = MachineDescription::n_cores(n);
            let mut rng = rand::rngs::StdRng::seed_from_u64(42 + n as u64);
            let plan =
                compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
            let mut exec =
                compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
            let report = exec.run(None).expect("run succeeds");
            assert!(
                bench.parallel_checksum(&compiler, &exec) == serial.checksum,
                "{} wrong on {n} cores",
                bench.name()
            );
            print!(
                " {:>7.2}",
                one_core.makespan as f64 / report.makespan as f64
            );
        }
        println!();
    }
    println!("\n(each cell: fresh synthesis + virtual-time execution, verified bit-exactly)");
}
