//! Regenerates the paper's Figure 7: speedups of the six benchmarks on a
//! 62-core TILEPro64-like machine, plus the §5.5 overhead column.
//!
//! Usage: `cargo run --release -p bamboo-bench --bin fig7_speedup`

use bamboo::MachineDescription;
use bamboo_apps::Scale;
use bamboo_bench::fig7;

fn main() {
    let machine = MachineDescription::tilepro64();
    println!(
        "== Figure 7: speedup of the benchmarks on {} cores ==\n",
        machine.core_count()
    );
    let rows = fig7::run_all(Scale::Original, &machine, 42);
    print!("{}", fig7::format_table(&rows));
}
