//! Regeneration of the paper's illustrative figures (F1-F4 in DESIGN.md):
//!
//! - Figure 3: the profile-annotated CSTG of the keyword-counting example;
//! - Figure 4: a candidate layout of the example on a quad-core machine;
//! - Figure 6: a simulated execution trace with its critical path;
//! - Figure 8: the task flow of the Tracking benchmark.

use bamboo::schedule::{
    compute_replication, critical_path, scc_tree_transform, simulate, SimOptions,
};
use bamboo::{Compiler, MachineDescription, Profile};
use bamboo_apps::{Benchmark, Scale};
use std::fmt::Write as _;

/// Builds the keyword-counting compiler plus its profile (the Figure 3/4/6
/// substrate).
pub fn keyword_setup(sections: usize) -> (Compiler, Profile) {
    let compiler = bamboo_apps::keyword::compiler(sections);
    let (profile, _, ()) = compiler
        .profile_run(None, "original", |_| ())
        .expect("keyword-count runs");
    (compiler, profile)
}

/// Figure 3: the CSTG with profile annotations, as Graphviz dot.
///
/// Solid edges carry `task: <mean cycles, probability>` labels; dashed
/// edges carry expected allocation counts; double ellipses mark
/// allocatable states — the notation of the paper's figure.
pub fn fig3_annotated_cstg(compiler: &Compiler, profile: &Profile) -> String {
    let spec = &compiler.program.spec;
    let analysis = &compiler.dependence;
    let cstg = &compiler.cstg;
    let mut out = String::from("digraph cstg {\n  rankdir=LR;\n  node [shape=ellipse];\n");
    for (i, node) in cstg.nodes.iter().enumerate() {
        let class = spec.class(node.class);
        let state = &analysis.astg(node.class).states[node.state.index()];
        let mut flags: Vec<String> = state
            .flags
            .iter()
            .map(|f| class.flag_name(f).to_string())
            .collect();
        if flags.is_empty() {
            flags.push("(none)".to_string());
        }
        let peripheries = if node.allocatable { 2 } else { 1 };
        writeln!(
            out,
            "  n{i} [label=\"{}\\n{{{}}}\" peripheries={peripheries}];",
            class.name,
            flags.join(",")
        )
        .expect("write to string");
    }
    for edge in &cstg.task_edges {
        let tp = profile.task(edge.task);
        let stats = &tp.exits[edge.exit.index()];
        let label = format!(
            "{}: <{}, {:.0}%>",
            spec.task(edge.task).name,
            stats.mean_cycles(),
            tp.exit_probability(edge.exit) * 100.0
        );
        writeln!(
            out,
            "  n{} -> n{} [label=\"{label}\"];",
            edge.from.0, edge.to.0
        )
        .expect("write to string");
    }
    for edge in &cstg.new_edges {
        let tp = profile.task(edge.task);
        let inv = tp.invocations().max(1);
        let total: u64 = tp
            .exits
            .iter()
            .map(|e| {
                e.site_allocs
                    .get(edge.site.site.index())
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        let sources: Vec<u32> = cstg
            .task_edges
            .iter()
            .filter(|e| e.task == edge.task)
            .map(|e| e.from.0)
            .take(1)
            .collect();
        for src in sources {
            writeln!(
                out,
                "  n{} -> n{} [style=dashed label=\"new x{:.1}\"];",
                src,
                edge.to.0,
                total as f64 / inv as f64
            )
            .expect("write to string");
        }
    }
    out.push_str("}\n");
    out
}

/// Figure 4: a synthesized quad-core layout of the keyword-counting
/// example, as a per-core table.
pub fn fig4_quad_layout(compiler: &Compiler, profile: &Profile, seed: u64) -> String {
    use rand::SeedableRng;
    let machine = MachineDescription::quad();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let plan = compiler.synthesize(
        profile,
        &machine,
        &bamboo::SynthesisOptions::default(),
        &mut rng,
    );
    let mut out = format!(
        "synthesized quad-core layout (estimated {} cycles):\n",
        plan.estimate.makespan
    );
    out.push_str(&plan.layout.describe(&compiler.program.spec, &plan.graph));
    out
}

/// Figure 6: a simulated execution trace of the example on a quad-core
/// layout, with the critical path marked — the event listing of the
/// paper's figure.
pub fn fig6_trace(compiler: &Compiler, profile: &Profile) -> String {
    let spec = &compiler.program.spec;
    let machine = MachineDescription::quad();
    let graph = scc_tree_transform(&compiler.graph_with_profile(profile));
    let repl = compute_replication(spec, &graph, profile, 4);
    let layout = bamboo::schedule::spread_layout(&graph, &repl, 4);
    let result = simulate(
        spec,
        &graph,
        &layout,
        profile,
        &machine,
        &SimOptions {
            collect_trace: true,
            ..SimOptions::default()
        },
    );
    let trace = result.trace.expect("trace requested");
    let cp = critical_path(&trace);
    let mut out = format!(
        "simulated execution on 4 cores: makespan {} cycles, {} invocations\n",
        result.makespan, result.invocations
    );
    out.push_str(
        "  id core       start         end  task                         on critical path\n",
    );
    for t in &trace.tasks {
        writeln!(
            out,
            "{:>4} {:>4} {:>11} {:>11}  {:<28} {}",
            t.id,
            t.core.index(),
            t.start,
            t.end,
            spec.task(t.task).name,
            if cp.contains(&t.id) { "*" } else { "" }
        )
        .expect("write to string");
    }
    writeln!(out, "critical path: {cp:?}").expect("write to string");
    out
}

/// Figure 8: the task flow of the Tracking benchmark as Graphviz dot —
/// tasks as nodes, edges where one task's output objects feed another.
pub fn fig8_tracking_taskflow() -> String {
    let compiler = bamboo_apps::tracking::Tracking.compiler(Scale::Small);
    taskflow_dot(&compiler)
}

/// Task-flow graph of any compiled program: a task A feeds task B when A
/// transitions or allocates an object into a state B consumes.
pub fn taskflow_dot(compiler: &Compiler) -> String {
    let spec = &compiler.program.spec;
    let cstg = &compiler.cstg;
    let mut out = String::from("digraph taskflow {\n  rankdir=TB;\n  node [shape=box];\n");
    for (i, task) in spec.tasks.iter().enumerate() {
        writeln!(out, "  t{i} [label=\"{}\"];", task.name).expect("write to string");
    }
    let mut edges: Vec<(usize, usize, bool)> = Vec::new();
    // Transition edges: A moves an object into a state whose outgoing
    // transitions belong to B.
    for a in &cstg.task_edges {
        for b in &cstg.task_edges {
            if a.to == b.from && a.task != b.task {
                edges.push((a.task.index(), b.task.index(), false));
            }
        }
    }
    // Allocation edges: A allocates into a state B consumes.
    for alloc in &cstg.new_edges {
        for b in &cstg.task_edges {
            if alloc.to == b.from && alloc.task != b.task {
                edges.push((alloc.task.index(), b.task.index(), true));
            }
        }
    }
    edges.sort();
    edges.dedup();
    for (a, b, dashed) in edges {
        writeln!(
            out,
            "  t{a} -> t{b}{};",
            if dashed { " [style=dashed]" } else { "" }
        )
        .expect("write to string");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_contains_all_states_and_tasks() {
        let (compiler, profile) = keyword_setup(4);
        let dot = fig3_annotated_cstg(&compiler, &profile);
        assert!(dot.contains("processText"));
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("new x4.0"));
        assert!(dot.contains("100%"));
    }

    #[test]
    fn fig4_layout_uses_multiple_cores() {
        let (compiler, profile) = keyword_setup(4);
        let text = fig4_quad_layout(&compiler, &profile, 42);
        assert!(text.contains("core#0"));
        assert!(text.contains("processText"));
    }

    #[test]
    fn fig6_trace_has_critical_path() {
        let (compiler, profile) = keyword_setup(4);
        let text = fig6_trace(&compiler, &profile);
        assert!(text.contains("critical path"));
        assert!(text.contains("mergeIntermediateResult"));
        assert!(text.contains('*'));
    }

    #[test]
    fn fig8_taskflow_follows_phases() {
        let dot = fig8_tracking_taskflow();
        assert!(dot.contains("blur"));
        assert!(dot.contains("mergeTracks"));
        // blur feeds mergeBlur; mergeBlur feeds gradient (allocation).
        let blur = dot.find("t1 ->").is_some();
        assert!(blur);
        assert!(dot.contains("[style=dashed]"));
    }
}
