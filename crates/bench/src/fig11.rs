//! Experiment E4: the paper's Figure 11 — generality of synthesized
//! implementations.
//!
//! Each benchmark is synthesized twice: once from the profile of the
//! original input (`Profile_original`) and once from the profile of a
//! doubled workload (`Profile_double`). Both layouts then execute the
//! *doubled* input. If the original profile exposed enough parallelism,
//! the two speedups are close — the synthesized binaries generalize. The
//! paper highlights MonteCarlo, where only the larger profile yielded the
//! pipelined implementation.

use bamboo::{Compiler, ExecConfig, MachineDescription, SynthesisOptions};
use bamboo_apps::{Benchmark, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of the Figure 11 table.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Benchmark name.
    pub name: &'static str,
    /// 1-core Bamboo cycles on the doubled input.
    pub one_core_cycles: u64,
    /// Many-core cycles on the doubled input, layout from the original
    /// profile.
    pub cycles_profile_original: u64,
    /// Many-core cycles on the doubled input, layout from the doubled
    /// profile.
    pub cycles_profile_double: u64,
    /// Whether both runs reproduced the serial result.
    pub verified: bool,
}

impl Fig11Row {
    /// Speedup with the original-profile layout.
    pub fn speedup_original(&self) -> f64 {
        self.one_core_cycles as f64 / self.cycles_profile_original as f64
    }

    /// Speedup with the double-profile layout.
    pub fn speedup_double(&self) -> f64 {
        self.one_core_cycles as f64 / self.cycles_profile_double as f64
    }
}

/// Runs the experiment for one benchmark with explicit scales (`base` is
/// the profiled input, `larger` the input both layouts execute).
pub fn run_benchmark_scaled(
    bench: &dyn Benchmark,
    machine: &MachineDescription,
    seed: u64,
    base: Scale,
    larger: Scale,
) -> Fig11Row {
    let serial_double = bench.serial(larger);

    // Profile the original input.
    let compiler_orig: Compiler = bench.compiler(base);
    let (profile_orig, _, ()) = compiler_orig
        .profile_run(None, "original", |_| ())
        .expect("profiling run succeeds");

    // Profile the doubled input (also the 1-core number on the new input).
    let compiler_double: Compiler = bench.compiler(larger);
    let (profile_double, one_core_double, ()) = compiler_double
        .profile_run(None, "double", |_| ())
        .expect("profiling run succeeds");

    // Synthesize both layouts.
    let mut rng = StdRng::seed_from_u64(seed);
    let plan_orig = compiler_orig.synthesize(
        &profile_orig,
        machine,
        &SynthesisOptions::default(),
        &mut rng,
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let plan_double = compiler_double.synthesize(
        &profile_double,
        machine,
        &SynthesisOptions::default(),
        &mut rng,
    );

    // Execute the doubled input under both layouts. (The spec — classes,
    // tasks, guards — is scale-independent, so the original-profile plan
    // applies directly to the doubled program.)
    let mut exec_orig = compiler_double.executor(
        &plan_orig.graph,
        &plan_orig.layout,
        machine,
        ExecConfig::default(),
    );
    let run_orig = exec_orig.run(None).expect("run succeeds");
    let ok_orig = bench.parallel_checksum(&compiler_double, &exec_orig) == serial_double.checksum;

    let mut exec_double = compiler_double.executor(
        &plan_double.graph,
        &plan_double.layout,
        machine,
        ExecConfig::default(),
    );
    let run_double = exec_double.run(None).expect("run succeeds");
    let ok_double =
        bench.parallel_checksum(&compiler_double, &exec_double) == serial_double.checksum;

    Fig11Row {
        name: bench.name(),
        one_core_cycles: one_core_double.makespan,
        cycles_profile_original: run_orig.makespan,
        cycles_profile_double: run_double.makespan,
        verified: ok_orig && ok_double,
    }
}

/// Runs the experiment for one benchmark (original vs doubled input, as
/// in the paper).
pub fn run_benchmark(bench: &dyn Benchmark, machine: &MachineDescription, seed: u64) -> Fig11Row {
    run_benchmark_scaled(bench, machine, seed, Scale::Original, Scale::Double)
}

/// Runs the full table.
pub fn run_all(machine: &MachineDescription, seed: u64) -> Vec<Fig11Row> {
    bamboo_apps::all()
        .iter()
        .map(|b| run_benchmark(b.as_ref(), machine, seed))
        .collect()
}

/// Formats rows as the paper's Figure 11 table.
pub fn format_table(rows: &[Fig11Row]) -> String {
    let mut out = String::new();
    out.push_str("              Profile_original, Input_double   Profile_double, Input_double\n");
    out.push_str("Benchmark     1-Core    62-Core   Speedup       62-Core   Speedup   verified\n");
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>7.1}  {:>9.2}  {:>8.1}      {:>8.2}  {:>8.1}   {}\n",
            r.name,
            r.one_core_cycles as f64 / 1e8,
            r.cycles_profile_original as f64 / 1e8,
            r.speedup_original(),
            r.cycles_profile_double as f64 / 1e8,
            r.speedup_double(),
            if r.verified { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_generalize_on_small_machine() {
        let bench = bamboo_apps::montecarlo::MonteCarlo;
        let machine = MachineDescription::n_cores(8);
        let row = run_benchmark_scaled(&bench, &machine, 5, Scale::Small, Scale::Original);
        assert!(row.verified);
        // Both layouts parallelize the doubled input.
        assert!(
            row.speedup_original() > 2.0,
            "orig {}",
            row.speedup_original()
        );
        assert!(
            row.speedup_double() > 2.0,
            "double {}",
            row.speedup_double()
        );
        let table = format_table(&[row]);
        assert!(table.contains("MonteCarlo"));
    }
}
