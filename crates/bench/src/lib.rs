#![warn(missing_docs)]

//! # bamboo-bench
//!
//! The experiment harness regenerating every table and figure of the
//! Bamboo paper's evaluation (§5). Each experiment has a module here and
//! a binary under `src/bin/`:
//!
//! | module | paper artifact | binary |
//! |---|---|---|
//! | [`fig7`] | Figure 7 — speedups on 62 cores (+ §5.5 overhead column) | `fig7_speedup` |
//! | [`fig9`] | Figure 9 — scheduling-simulator accuracy | `fig9_sim_accuracy` |
//! | [`fig10`] | Figure 10 — DSA efficiency distributions | `fig10_dsa` |
//! | [`fig11`] | Figure 11 — generality of synthesized layouts | `fig11_generality` |
//! | [`figures`] | Figures 3, 4, 6, 8 — CSTG, layout, trace, task flow | `fig3_cstg` … `fig8_taskflow` |
//!
//! `dsa_timing` reports the §5.1 synthesis times; `run_all` drives the
//! whole evaluation and writes EXPERIMENTS-ready output.
//!
//! Criterion benches live under `benches/`: `speedup` measures the
//! end-to-end pipeline per benchmark, `synthesis` the synthesis stages,
//! and `ablation` the design-choice ablations DESIGN.md §6 lists.

pub mod fig10;
pub mod fig11;
pub mod fig7;
pub mod fig9;
pub mod figures;
