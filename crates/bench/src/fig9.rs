//! Experiment E2: the paper's Figure 9 — accuracy of the scheduling
//! simulator.
//!
//! For each benchmark the scheduling simulator's estimated execution time
//! is compared against the virtual-time executor's real execution, for
//! both the single-core and the synthesized many-core implementation. Two
//! simulator modes are reported: *replay* (the default: multi-exit control
//! tasks take their recorded exits, giving near-exact structure) and
//! *aggregate* (the paper's plain count-matching Markov model, which
//! shows paper-sized errors on iteration-structured benchmarks).

use bamboo::{
    simulate, Compiler, ExecConfig, Layout, MachineDescription, SimOptions, SynthesisOptions,
};
use bamboo_apps::{Benchmark, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One benchmark's accuracy numbers.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Simulator estimate, 1 core (replay mode).
    pub est_1core: u64,
    /// Real execution, 1 core.
    pub real_1core: u64,
    /// Simulator estimate, many cores (replay mode).
    pub est_n: u64,
    /// Real execution, many cores.
    pub real_n: u64,
    /// Aggregate-mode estimate, many cores (ablation).
    pub est_n_aggregate: u64,
}

impl Fig9Row {
    /// Relative error of the 1-core estimate, percent.
    pub fn error_1core(&self) -> f64 {
        (self.est_1core as f64 / self.real_1core as f64 - 1.0) * 100.0
    }

    /// Relative error of the many-core estimate, percent.
    pub fn error_n(&self) -> f64 {
        (self.est_n as f64 / self.real_n as f64 - 1.0) * 100.0
    }

    /// Relative error of the aggregate-mode many-core estimate, percent.
    pub fn error_n_aggregate(&self) -> f64 {
        (self.est_n_aggregate as f64 / self.real_n as f64 - 1.0) * 100.0
    }
}

/// Runs the experiment for one benchmark.
pub fn run_benchmark(
    bench: &dyn Benchmark,
    scale: Scale,
    machine: &MachineDescription,
    seed: u64,
) -> Fig9Row {
    let compiler: Compiler = bench.compiler(scale);
    let (profile, one_core, ()) = compiler
        .profile_run(None, "original", |_| ())
        .expect("single-core run succeeds");
    // Single-core estimate: simulate the single-core layout.
    let graph1 = compiler.graph_with_profile(&profile);
    let layout1 = Layout::single_core(&graph1);
    let machine1 = MachineDescription::n_cores(1);
    let est1 = simulate(
        &compiler.program.spec,
        &graph1,
        &layout1,
        &profile,
        &machine1,
        &SimOptions::default(),
    );

    // Many-core: synthesize, then compare estimate vs real execution.
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = compiler.synthesize(&profile, machine, &SynthesisOptions::default(), &mut rng);
    let mut exec = compiler.executor(&plan.graph, &plan.layout, machine, ExecConfig::default());
    let real_n = exec.run(None).expect("many-core run succeeds");
    let est_n_aggregate = simulate(
        &compiler.program.spec,
        &plan.graph,
        &plan.layout,
        &profile,
        machine,
        &SimOptions {
            replay: false,
            ..SimOptions::default()
        },
    );
    Fig9Row {
        name: bench.name(),
        est_1core: est1.makespan,
        real_1core: one_core.makespan,
        est_n: plan.estimate.makespan,
        real_n: real_n.makespan,
        est_n_aggregate: est_n_aggregate.makespan,
    }
}

/// Runs the full table.
pub fn run_all(scale: Scale, machine: &MachineDescription, seed: u64) -> Vec<Fig9Row> {
    bamboo_apps::all()
        .iter()
        .map(|b| run_benchmark(b.as_ref(), scale, machine, seed))
        .collect()
}

/// Formats rows as the paper's Figure 9 table, plus the aggregate-mode
/// ablation column.
pub fn format_table(rows: &[Fig9Row]) -> String {
    let mut out = String::new();
    out.push_str("              1-Core Bamboo (1e8 cyc)        62-Core Bamboo (1e8 cyc)\n");
    out.push_str(
        "Benchmark    Estimate     Real    Error    Estimate     Real    Error   AggrErr\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>8.1} {:>8.1}  {:>+6.2}%   {:>8.2} {:>8.2}  {:>+6.2}%  {:>+6.2}%\n",
            r.name,
            r.est_1core as f64 / 1e8,
            r.real_1core as f64 / 1e8,
            r.error_1core(),
            r.est_n as f64 / 1e8,
            r.real_n as f64 / 1e8,
            r.error_n(),
            r.error_n_aggregate(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_estimates_are_accurate_on_small_scale() {
        let bench = bamboo_apps::montecarlo::MonteCarlo;
        let machine = MachineDescription::n_cores(8);
        let row = run_benchmark(&bench, Scale::Small, &machine, 11);
        assert!(
            row.error_1core().abs() < 5.0,
            "1-core error {}",
            row.error_1core()
        );
        assert!(row.error_n().abs() < 5.0, "n-core error {}", row.error_n());
        let table = format_table(&[row]);
        assert!(table.contains("MonteCarlo"));
    }
}
