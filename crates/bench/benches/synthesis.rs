//! Criterion bench: the synthesis stages in isolation — scheduling
//! simulation of one layout, and a full DSA run — on the keyword-count
//! example's profile.

use bamboo::schedule::{
    compute_replication, optimize, random_layouts, scc_tree_transform, simulate, spread_layout,
    DsaOptions, SimOptions,
};
use bamboo::MachineDescription;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_synthesis(c: &mut Criterion) {
    let compiler = bamboo_apps::keyword::compiler(16);
    let (profile, _, ()) = compiler
        .profile_run(None, "bench", |_| ())
        .expect("profiles");
    let spec = &compiler.program.spec;
    let machine = MachineDescription::sixteen();
    let graph = scc_tree_transform(&compiler.graph_with_profile(&profile));
    let repl = compute_replication(spec, &graph, &profile, 16);
    let layout = spread_layout(&graph, &repl, 16);

    c.bench_function("simulate_one_layout", |b| {
        b.iter(|| {
            black_box(simulate(
                spec,
                &graph,
                &layout,
                &profile,
                &machine,
                &SimOptions::default(),
            ))
        });
    });

    c.bench_function("dsa_full_run", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            let starts = random_layouts(&graph, &repl, 16, 4, &mut rng);
            black_box(optimize(
                spec,
                &graph,
                &profile,
                &machine,
                starts,
                &DsaOptions::default(),
                &mut rng,
            ))
        });
    });
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
