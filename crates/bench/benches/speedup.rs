//! Criterion bench: the end-to-end Bamboo pipeline per benchmark —
//! profile → synthesize → execute on the many-core virtual machine —
//! at the Small scale (so a Criterion run stays interactive). The
//! measured quantity is host wall time of the full pipeline; the paper's
//! Figure 7 (virtual cycles on the full inputs) comes from the
//! `fig7_speedup` binary.

use bamboo::{ExecConfig, MachineDescription, SynthesisOptions};
use bamboo_apps::{Benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn pipeline(bench: &dyn Benchmark, machine: &MachineDescription) -> u64 {
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "bench", |_| ())
        .expect("profiles");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let plan = compiler.synthesize(&profile, machine, &SynthesisOptions::default(), &mut rng);
    let mut exec = compiler.executor(&plan.graph, &plan.layout, machine, ExecConfig::default());
    exec.run(None).expect("runs").makespan
}

fn bench_pipeline(c: &mut Criterion) {
    let machine = MachineDescription::n_cores(8);
    let mut group = c.benchmark_group("pipeline_small");
    group.sample_size(10);
    for bench in bamboo_apps::all() {
        group.bench_function(bench.name(), |b| {
            b.iter(|| black_box(pipeline(bench.as_ref(), &machine)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
