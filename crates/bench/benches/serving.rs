//! Open-loop serving benchmark: maximum sustainable throughput under a
//! p99 latency SLO (DESIGN.md §15).
//!
//! For each application, deployments are synthesized for an 8-core
//! machine model with a fixed seed, then:
//!
//! 1. a *solo* run (stepped pacing, micro-batches of one — each request
//!    runs uncontended) measures the intrinsic p99 latency;
//! 2. the SLO is set to `SLO_MULTIPLIER ×` solo p99;
//! 3. a load ladder doubles the offered Poisson rate per level; the max
//!    sustainable throughput is the highest level whose p99 met the SLO
//!    with nothing shed at admission or on the router.
//!
//! Writes `BENCH_serving.json` at the repository root — the baseline
//! `bamboo-doctor --check` gates against (`serving-*` checks).
//!
//! Modes (custom `main`, `harness = false`):
//! - `--bench` (what `cargo bench` passes): full sweep + JSON.
//! - `--test` (CI smoke) or no recognized flag: two apps, one tiny
//!   level, no JSON.

use bamboo::{
    AdaptPolicy, Bursty, Compiler, CoreId, Deployment, DeploymentHandle, MachineDescription,
    Pacing, Poisson, Profile, RunOptions, Server, ServingOptions, ServingReport, SynthesisOptions,
    ThreadedExecutor,
};
use bamboo_apps::{Benchmark, Scale};
use rand::SeedableRng;
use std::time::Duration;

/// Synthesis and arrival seed — the sweep is reproducible end to end.
const SEED: u64 = 42;
/// Machine model the deployments are planned for.
const CORES: usize = 8;
/// The p99 SLO is this multiple of the measured solo p99.
const SLO_MULTIPLIER: f64 = 10.0;
/// Absolute SLO floor, microseconds. The solo run measures hot workers
/// (stepped pacing never parks them); under wall pacing a sparse
/// arrival finds every worker parked and pays wakeup latency plus
/// scheduler jitter, which on a loaded host is milliseconds regardless
/// of the app's intrinsic service time. The floor keeps the SLO above
/// that noise so the sweep measures the runtime, not the scheduler.
const SLO_FLOOR_US: f64 = 5_000.0;
/// First ladder level, requests per second.
const START_RPS: f64 = 50.0;
/// Ladder levels double from [`START_RPS`] at most this many times.
const MAX_LEVELS: usize = 12;
/// A level only counts as sustained when completions kept at least this
/// pace relative to the offered rate. With a fixed request count per
/// level, high offered rates degenerate into a single burst whose p99
/// stays bounded even when the system completes far slower than it
/// admits — the pace criterion keeps the recorded max honest.
const PACE_FRACTION: f64 = 0.5;
/// Requests per run of the adaptive-vs-frozen comparison (full mode).
const ADAPT_REQS: usize = 160;
/// Requests per run of the comparison in smoke mode.
const ADAPT_REQS_SMOKE: usize = 16;
/// Reps of each fixed-layout leg of the comparison; the best p99 is
/// recorded (same convention as the threaded bench's best-wall-over-
/// reps — the tail of a single rep is host-scheduler noise).
const ADAPT_REPS: usize = 3;

/// One ladder level's outcome.
struct Level {
    offered_rps: f64,
    /// Completions per second of wall time, first arrival to drain.
    completed_rps: f64,
    admitted: u64,
    completed: u64,
    shed: u64,
    router_shed: u64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

impl Level {
    fn from_report(offered_rps: f64, report: &ServingReport, elapsed_secs: f64) -> Level {
        Level {
            offered_rps,
            completed_rps: report.completed as f64 / elapsed_secs.max(1e-9),
            admitted: report.admitted,
            completed: report.completed,
            shed: report.shed,
            router_shed: report.executor.router_shed,
            p50_us: report.latency_us.p50(),
            p99_us: report.latency_us.p99(),
            p999_us: report.latency_us.p999(),
        }
    }

    /// Whether this level sustained the SLO: everything admitted and
    /// completed, nothing shed anywhere, p99 inside the objective, and
    /// completions kept pace with the offered rate.
    fn sustained(&self, slo_p99_us: f64) -> bool {
        self.shed == 0
            && self.router_shed == 0
            && self.completed == self.admitted
            && (self.p99_us as f64) <= slo_p99_us
            && self.completed_rps >= self.offered_rps * PACE_FRACTION
    }

    fn json(&self) -> String {
        format!(
            "{{ \"offered_rps\": {:.1}, \"completed_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"p999_us\": {}, \"admitted\": {}, \"completed\": {}, \"shed\": {} }}",
            self.offered_rps,
            self.completed_rps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.admitted,
            self.completed,
            self.shed,
        )
    }
}

/// One application's sweep result.
struct Sweep {
    name: String,
    solo_p99_us: u64,
    slo_p99_us: f64,
    max_sustainable_rps: f64,
    /// Index into `levels` of the sustainable level (last passing one).
    sustainable: usize,
    levels: Vec<Level>,
    adapt: AdaptOutcome,
}

/// Adaptive-vs-frozen outcome under a shifting bursty mix from a
/// deliberately stale (all-on-core-0) layout.
struct AdaptOutcome {
    frozen_p99_us: u64,
    /// p99 of the shifted mix served under the layout the controller
    /// converged on (the post-relayout latency).
    adaptive_p99_us: u64,
    /// p99 of the adaptive run itself — includes the stale warmup
    /// phase before the first relayout committed.
    midrun_p99_us: u64,
    relayouts: u64,
    layout_epoch: u64,
    decisions: u64,
    /// Observed↔baseline exit-rate divergence before the first
    /// relayout; negative when unmeasured.
    pre_divergence: f64,
    /// Divergence after the last relayout; negative when unmeasured
    /// (e.g. no relayout committed).
    post_divergence: f64,
    /// Both runs completed every admitted request.
    exact: bool,
}

fn deployment_for(
    bench: &dyn Benchmark,
    machine: &MachineDescription,
) -> (Compiler, Deployment, Profile) {
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "serving", |_| ())
        .expect("profiles");
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let plan = compiler.synthesize(&profile, machine, &SynthesisOptions::default(), &mut rng);
    let deployment = compiler.deploy(&plan);
    (compiler, deployment, profile)
}

/// Serves `total` Poisson arrivals at `rate`; returns the report and
/// the wall seconds from first arrival to drain (worker spawn and
/// shutdown excluded).
fn serve_at(
    deployment: &Deployment,
    options: ServingOptions,
    rate: f64,
    seed: u64,
    total: usize,
) -> (ServingReport, f64) {
    let exec = ThreadedExecutor::default();
    let mut server =
        Server::start(&exec, deployment, RunOptions::default(), options).expect("server starts");
    let mut arrivals = Poisson::new(rate, seed);
    let t0 = std::time::Instant::now();
    server
        .serve(&mut arrivals, total, |_| Box::new(()))
        .expect("serving run");
    server.await_idle().expect("serving drain");
    let elapsed = t0.elapsed().as_secs_f64();
    (server.finish().expect("serving finish"), elapsed)
}

/// Measures the intrinsic (uncontended) p99 once per app and derives
/// the SLO target from it. Hoisted out of the ladder: every rung gates
/// against this one number, so the target cannot drift with host noise
/// between rungs.
fn solo_slo(deployment: &Deployment, solo_reqs: usize) -> (u64, f64) {
    // Stepped pacing with micro-batches of one runs every request to
    // completion before the next is injected: uncontended latency.
    let solo_options = ServingOptions::new()
        .with_pacing(Pacing::Stepped)
        .with_batching(1, Duration::ZERO);
    let (solo, _) = serve_at(deployment, solo_options, 1_000.0, SEED, solo_reqs);
    let solo_p99_us = solo.latency_us.p99().max(1);
    let slo_p99_us = (solo_p99_us as f64 * SLO_MULTIPLIER).max(SLO_FLOOR_US);
    (solo_p99_us, slo_p99_us)
}

/// Serves `total` shifting bursty arrivals (stepped pacing, a batch
/// window wide enough that a burst's requests actually overlap — which
/// is exactly where the layout matters) with adaptation optionally
/// armed. Returns the report and the layout the run ended on.
fn serve_shifted(
    deployment: &Deployment,
    policy: Option<AdaptPolicy>,
    total: usize,
) -> (ServingReport, bamboo::Layout) {
    let mut handle = DeploymentHandle::from_deployment(deployment.clone());
    if let Some(policy) = policy {
        handle = handle.with_adapt(policy);
    }
    let mut session = handle
        .serve(
            ServingOptions::new()
                .with_pacing(Pacing::Stepped)
                .with_batching(16, Duration::from_millis(4)),
        )
        .expect("server starts");
    // A Markov-modulated mix: calm 400/s punctuated by 8000/s bursts —
    // the phase change the synthesized layout never saw. During bursts
    // the 4ms window fills whole batches, so the serialized stale
    // layout pays its full price.
    let mut arrivals = Bursty::new(400.0, 8_000.0, 0.25, SEED);
    session
        .serve(&mut arrivals, total, |_| Box::new(()))
        .expect("shifted serve");
    let snapshot = session.snapshot();
    (session.stop().expect("shifted finish"), snapshot.layout)
}

/// The adaptive-vs-frozen comparison. Both start from the same
/// deliberately stale layout (every instance on core 0). The frozen run
/// keeps it end to end. The adaptive run hot-migrates off it mid-stream;
/// the layout it converges on is then replayed over the same mix, so
/// `adaptive_p99_us` is the post-relayout latency uncontaminated by the
/// stale warmup phase (`midrun_p99_us` keeps the contaminated number).
fn adapt_comparison(
    deployment: &Deployment,
    profile: &Profile,
    machine: &MachineDescription,
    total: usize,
) -> AdaptOutcome {
    let mut squeezed = deployment.clone();
    for inst in &mut squeezed.layout.instances {
        inst.core = CoreId::new(0);
    }
    // Best p99 over reps of a fixed-layout leg; exact accounting must
    // hold on every rep.
    let best_p99 = |layout: &Deployment, exact: &mut bool| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..ADAPT_REPS {
            let (report, _) = serve_shifted(layout, None, total);
            *exact &= report.completed == total as u64;
            best = best.min(report.latency_us.p99());
        }
        best
    };
    let mut exact = true;
    let frozen_p99_us = best_p99(&squeezed, &mut exact);
    let policy = AdaptPolicy::new(machine.clone())
        .with_min_invocations(16)
        .with_baseline(profile.clone())
        .with_seed(SEED);
    let (adaptive, adapted_layout) = serve_shifted(&squeezed, Some(policy), total);
    exact &= adaptive.completed == total as u64;
    let mut adapted = squeezed.clone();
    for (inst, landed) in adapted
        .layout
        .instances
        .iter_mut()
        .zip(&adapted_layout.instances)
    {
        inst.core = landed.core;
    }
    let adaptive_p99_us = best_p99(&adapted, &mut exact);
    let adapt = adaptive.adapt.clone().unwrap_or_default();
    AdaptOutcome {
        frozen_p99_us,
        adaptive_p99_us,
        midrun_p99_us: adaptive.latency_us.p99(),
        relayouts: adapt.relayouts,
        layout_epoch: adaptive.layout_epoch,
        decisions: adapt.decisions,
        pre_divergence: adapt.pre_divergence.unwrap_or(-1.0),
        post_divergence: adapt.post_divergence.unwrap_or(-1.0),
        exact,
    }
}

fn sweep(
    bench: &dyn Benchmark,
    machine: &MachineDescription,
    solo_reqs: usize,
    level_reqs: usize,
    max_levels: usize,
    adapt_reqs: usize,
) -> Sweep {
    let (_compiler, deployment, profile) = deployment_for(bench, machine);
    let (solo_p99_us, slo_p99_us) = solo_slo(&deployment, solo_reqs);
    let adapt = adapt_comparison(&deployment, &profile, machine, adapt_reqs);

    let mut levels = Vec::new();
    let mut sustainable = 0usize;
    let mut max_sustainable_rps = 0.0;
    let mut rate = START_RPS;
    for step in 0..max_levels {
        let (report, elapsed) = serve_at(
            &deployment,
            ServingOptions::new(),
            rate,
            SEED + step as u64,
            level_reqs,
        );
        let level = Level::from_report(rate, &report, elapsed);
        let sustained = level.sustained(slo_p99_us);
        levels.push(level);
        if !sustained {
            break;
        }
        sustainable = levels.len() - 1;
        max_sustainable_rps = rate;
        rate *= 2.0;
    }

    Sweep {
        name: bench.name().to_string(),
        solo_p99_us,
        slo_p99_us,
        max_sustainable_rps,
        sustainable,
        levels,
        adapt,
    }
}

fn json_block(s: &Sweep) -> String {
    let at = &s.levels[s.sustainable];
    let levels: Vec<String> = s
        .levels
        .iter()
        .map(|l| format!("        {}", l.json()))
        .collect();
    let a = &s.adapt;
    let adapt = format!(
        "{{ \"frozen_p99_us\": {}, \"adaptive_p99_us\": {}, \"midrun_p99_us\": {}, \
         \"relayouts\": {}, \
         \"layout_epoch\": {}, \"decisions\": {}, \"pre_divergence\": {:.6}, \
         \"post_divergence\": {:.6}, \"exact\": {} }}",
        a.frozen_p99_us,
        a.adaptive_p99_us,
        a.midrun_p99_us,
        a.relayouts,
        a.layout_epoch,
        a.decisions,
        a.pre_divergence,
        a.post_divergence,
        a.exact,
    );
    format!(
        "    \"{}\": {{\n      \"solo_p99_us\": {}, \"slo_p99_us\": {:.1}, \"max_sustainable_rps\": {:.1},\n      \"at_sustainable\": {},\n      \"adapt\": {},\n      \"levels\": [\n{}\n      ]\n    }}",
        s.name,
        s.solo_p99_us,
        s.slo_p99_us,
        s.max_sustainable_rps,
        at.json(),
        adapt,
        levels.join(",\n"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `cargo bench` always injects `--bench`; an explicit `--test`
    // (the CI smoke step) wins over it.
    let full = args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test");
    let machine = MachineDescription::n_cores(CORES);
    let apps: Vec<&dyn Benchmark> = if full {
        vec![
            &bamboo_apps::kmeans::KMeans,
            &bamboo_apps::filterbank::FilterBank,
            &bamboo_apps::montecarlo::MonteCarlo,
            &bamboo_apps::series::Series,
        ]
    } else {
        vec![
            &bamboo_apps::kmeans::KMeans,
            &bamboo_apps::filterbank::FilterBank,
        ]
    };
    let (solo_reqs, level_reqs, max_levels, adapt_reqs) = if full {
        (12, 40, MAX_LEVELS, ADAPT_REQS)
    } else {
        (4, 6, 1, ADAPT_REQS_SMOKE)
    };

    let mut blocks = Vec::new();
    for bench in apps {
        let s = sweep(bench, &machine, solo_reqs, level_reqs, max_levels, adapt_reqs);
        let at = &s.levels[s.sustainable];
        println!(
            "bench serving/{:<12} solo p99 {:>7}us   SLO {:>9.0}us   sustainable {:>7.0} rps (p99 {}us, {} levels)",
            s.name, s.solo_p99_us, s.slo_p99_us, s.max_sustainable_rps, at.p99_us, s.levels.len(),
        );
        println!(
            "      adapt/{:<12} frozen p99 {:>7}us → adaptive p99 {:>7}us   {} relayouts (epoch {}, {} decisions, exact={})",
            s.name,
            s.adapt.frozen_p99_us,
            s.adapt.adaptive_p99_us,
            s.adapt.relayouts,
            s.adapt.layout_epoch,
            s.adapt.decisions,
            s.adapt.exact,
        );
        blocks.push(json_block(&s));
    }

    if full {
        let json = format!(
            "{{\n  \"machine_cores\": {},\n  \"scale\": \"small\",\n  \"seed\": {},\n  \"slo_multiplier\": {:.1},\n  \"benches\": {{\n{}\n  }}\n}}\n",
            machine.core_count(),
            SEED,
            SLO_MULTIPLIER,
            blocks.join(",\n"),
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
        std::fs::write(path, json).expect("write BENCH_serving.json");
        println!("wrote {path}");
    } else {
        println!("smoke ok (pass --bench for the measured sweep)");
    }
}
