//! Open-loop serving benchmark: maximum sustainable throughput under a
//! p99 latency SLO (DESIGN.md §15).
//!
//! For each application, deployments are synthesized for an 8-core
//! machine model with a fixed seed, then:
//!
//! 1. a *solo* run (stepped pacing, micro-batches of one — each request
//!    runs uncontended) measures the intrinsic p99 latency;
//! 2. the SLO is set to `SLO_MULTIPLIER ×` solo p99;
//! 3. a load ladder doubles the offered Poisson rate per level; the max
//!    sustainable throughput is the highest level whose p99 met the SLO
//!    with nothing shed at admission or on the router.
//!
//! Each app additionally records an adaptive-vs-frozen comparison
//! (`adapt` member, `adapt-*` checks) and a scope-off-vs-scope-on
//! overhead comparison at a quarter of the sustainable rate (`scope`
//! member, `scope-*` checks): exact stepped-pacing p99s certify zero
//! scheduling perturbation, wall-pacing throughput medians certify the
//! CPU cost — the live observability plane must stay within 3% on
//! both.
//!
//! Writes `BENCH_serving.json` at the repository root — the baseline
//! `bamboo-doctor --check` gates against (`serving-*` checks).
//!
//! Modes (custom `main`, `harness = false`):
//! - `--bench` (what `cargo bench` passes): full sweep + JSON.
//! - `--test` (CI smoke) or no recognized flag: two apps, one tiny
//!   level, no JSON.

use bamboo::{
    AdaptPolicy, Bursty, Compiler, CoreId, Deployment, DeploymentHandle, MachineDescription,
    Pacing, Poisson, Profile, RunOptions, ScopeConfig, Server, ServingOptions, ServingReport,
    SynthesisOptions, ThreadedExecutor,
};
use bamboo_apps::{Benchmark, Scale};
use rand::SeedableRng;
use std::time::Duration;

/// Synthesis and arrival seed — the sweep is reproducible end to end.
const SEED: u64 = 42;
/// Machine model the deployments are planned for.
const CORES: usize = 8;
/// The p99 SLO is this multiple of the measured solo p99.
const SLO_MULTIPLIER: f64 = 10.0;
/// Absolute SLO floor, microseconds. The solo run measures hot workers
/// (stepped pacing never parks them); under wall pacing a sparse
/// arrival finds every worker parked and pays wakeup latency plus
/// scheduler jitter, which on a loaded host is milliseconds regardless
/// of the app's intrinsic service time. The floor keeps the SLO above
/// that noise so the sweep measures the runtime, not the scheduler.
const SLO_FLOOR_US: f64 = 5_000.0;
/// First ladder level, requests per second.
const START_RPS: f64 = 50.0;
/// Ladder levels double from [`START_RPS`] at most this many times.
const MAX_LEVELS: usize = 12;
/// A level only counts as sustained when completions kept at least this
/// pace relative to the offered rate. With a fixed request count per
/// level, high offered rates degenerate into a single burst whose p99
/// stays bounded even when the system completes far slower than it
/// admits — the pace criterion keeps the recorded max honest.
const PACE_FRACTION: f64 = 0.5;
/// Requests per run of the adaptive-vs-frozen comparison (full mode).
const ADAPT_REQS: usize = 160;
/// Requests per run of the comparison in smoke mode.
const ADAPT_REQS_SMOKE: usize = 16;
/// Reps of each fixed-layout leg of the comparison; the best p99 is
/// recorded (same convention as the threaded bench's best-wall-over-
/// reps — the tail of a single rep is host-scheduler noise).
const ADAPT_REPS: usize = 3;
/// Wall-pacing reps of each throughput leg of the scope-overhead
/// comparison (full mode); odd, so the recorded per-leg median is a
/// real rep's value.
const SCOPE_REPS: usize = 5;
/// Stepped-pacing reps of each p99 leg (full mode). Stepped legs have
/// no pacing sleeps, so reps are cheap, and both legs replay the same
/// seed — identical arrivals, identical work — so each leg's near-best
/// rep is the same clean floor plus whatever systematic cost the plane
/// adds, and the floor estimate is comparable across columns.
const SCOPE_P99_REPS: usize = 31;
/// The band of sorted reps each p99 column averages (0-based,
/// half-open): the 3rd through 7th fastest — below the host's stall
/// zone, and a band mean is markedly more stable than any single
/// order statistic.
const SCOPE_P99_FLOOR_BAND: std::ops::Range<usize> = 2..7;
/// Fraction of the sustainable rate the scope comparison offers. At
/// the saturation knee p99 amplifies any perturbation (host scheduler,
/// allocator) far past the 3% budget being measured; well under the
/// knee the queueing is real but stable, so the ratio isolates the
/// plane's own cost.
const SCOPE_LOAD_FRACTION: f64 = 0.25;
/// Requests per wall-pacing scope throughput leg (full mode).
const SCOPE_REQS: usize = 2_000;
/// Requests per stepped-pacing scope p99 leg (full mode) — deep enough
/// that the p99 is a stable order statistic (the 40th-slowest of 4000
/// samples) rather than a handful of unlucky requests.
const SCOPE_P99_REQS: usize = 4_000;
/// Requests per rep of each scope leg (smoke mode).
const SCOPE_REQS_SMOKE: usize = 48;

/// One ladder level's outcome.
struct Level {
    offered_rps: f64,
    /// Completions per second of wall time, first arrival to drain.
    completed_rps: f64,
    admitted: u64,
    completed: u64,
    shed: u64,
    router_shed: u64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

impl Level {
    fn from_report(offered_rps: f64, report: &ServingReport, elapsed_secs: f64) -> Level {
        Level {
            offered_rps,
            completed_rps: report.completed as f64 / elapsed_secs.max(1e-9),
            admitted: report.admitted,
            completed: report.completed,
            shed: report.shed,
            router_shed: report.executor.router_shed,
            p50_us: report.latency_us.p50(),
            p99_us: report.latency_us.p99(),
            p999_us: report.latency_us.p999(),
        }
    }

    /// Whether this level sustained the SLO: everything admitted and
    /// completed, nothing shed anywhere, p99 inside the objective, and
    /// completions kept pace with the offered rate.
    fn sustained(&self, slo_p99_us: f64) -> bool {
        self.shed == 0
            && self.router_shed == 0
            && self.completed == self.admitted
            && (self.p99_us as f64) <= slo_p99_us
            && self.completed_rps >= self.offered_rps * PACE_FRACTION
    }

    fn json(&self) -> String {
        format!(
            "{{ \"offered_rps\": {:.1}, \"completed_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"p999_us\": {}, \"admitted\": {}, \"completed\": {}, \"shed\": {} }}",
            self.offered_rps,
            self.completed_rps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.admitted,
            self.completed,
            self.shed,
        )
    }
}

/// One application's sweep result.
struct Sweep {
    name: String,
    solo_p99_us: u64,
    slo_p99_us: f64,
    max_sustainable_rps: f64,
    /// Index into `levels` of the sustainable level (last passing one).
    sustainable: usize,
    levels: Vec<Level>,
    adapt: AdaptOutcome,
    scope: ScopeOutcome,
}

/// Scope-off vs scope-on overhead well under the saturation knee:
/// both legs replay the same seeded Poisson streams, one with the live
/// observability plane off and one with it on (default sampling, SLO
/// armed). p99 columns are exact stepped-pacing quantiles (virtual
/// arrival clock, deterministic); throughput columns are wall-pacing
/// medians over the interleaved reps.
struct ScopeOutcome {
    off_p99_us: u64,
    on_p99_us: u64,
    off_rps: f64,
    on_rps: f64,
}

/// Exact p99 over raw samples — the histogram's ~3% bucket resolution
/// is coarser than the 3% overhead budget the comparison gates, so the
/// quantile comes from `ServingReport::raw_latency_us` instead.
fn exact_p99_us(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    if sorted.is_empty() {
        return 1;
    }
    let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)].max(1)
}

/// Middle element after sorting — robust to a minority of host-stalled
/// reps.
fn median_f64(values: &mut [f64]) -> f64 {
    values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

/// The p99 columns are measured under *stepped* pacing: the virtual
/// arrival clock is the latency clock, so both legs' quantiles are
/// exact and deterministic, and any scheduling perturbation the plane
/// introduced lands in the comparison at full precision. (A wall-clock
/// p99 on a multi-tenant host measures CPU-steal stalls orders of
/// magnitude larger than the 3% budget — back-to-back same-seed legs
/// disagree with *themselves* by 2-50x — so it can certify nothing
/// finer.) The plane's real CPU cost is a per-request constant, and it
/// lands squarely in the wall-pacing throughput columns, which are
/// stable to ~0.1%: those run as same-seed pairs, off and on
/// interleaved so host drift hits both sides, recording each leg's
/// median completions-per-second across the reps.
fn scope_comparison(deployment: &Deployment, rate: f64, total: usize, reps: usize) -> ScopeOutcome {
    let scoped = || {
        ServingOptions::new().with_scope(
            ScopeConfig::default().with_slo((SLO_FLOOR_US * SLO_MULTIPLIER) as u64, 0.999),
        )
    };
    let p99_reqs = if total >= SCOPE_REQS {
        SCOPE_P99_REQS
    } else {
        total
    };
    let stepped_leg = |options: ServingOptions| {
        let stepped = options.with_pacing(Pacing::Stepped);
        let (report, _) = serve_at(deployment, stepped, rate, SEED, p99_reqs);
        exact_p99_us(&report.raw_latency_us)
    };
    let (mut off_p99s, mut on_p99s) = (Vec::new(), Vec::new());
    let reps_p99 = if reps == 1 { 1 } else { SCOPE_P99_REPS };
    for _ in 0..reps_p99 {
        off_p99s.push(stepped_leg(ServingOptions::new()));
        on_p99s.push(stepped_leg(scoped()));
    }
    let floor = |p99s: &mut Vec<u64>| {
        p99s.sort_unstable();
        let band = &p99s[SCOPE_P99_FLOOR_BAND.start.min(p99s.len() - 1)
            ..SCOPE_P99_FLOOR_BAND.end.min(p99s.len())];
        band.iter().sum::<u64>() / band.len() as u64
    };
    let (off_p99_us, on_p99_us) = (floor(&mut off_p99s), floor(&mut on_p99s));
    let (mut off_rpss, mut on_rpss) = (Vec::new(), Vec::new());
    for rep in 0..reps {
        let seed = SEED + rep as u64;
        let (report, elapsed) = serve_at(deployment, ServingOptions::new(), rate, seed, total);
        off_rpss.push(report.completed as f64 / elapsed.max(1e-9));
        let (report, elapsed) = serve_at(deployment, scoped(), rate, seed, total);
        on_rpss.push(report.completed as f64 / elapsed.max(1e-9));
    }
    ScopeOutcome {
        off_p99_us,
        on_p99_us,
        off_rps: median_f64(&mut off_rpss),
        on_rps: median_f64(&mut on_rpss),
    }
}

/// Adaptive-vs-frozen outcome under a shifting bursty mix from a
/// deliberately stale (all-on-core-0) layout.
struct AdaptOutcome {
    frozen_p99_us: u64,
    /// p99 of the shifted mix served under the layout the controller
    /// converged on (the post-relayout latency).
    adaptive_p99_us: u64,
    /// p99 of the adaptive run itself — includes the stale warmup
    /// phase before the first relayout committed.
    midrun_p99_us: u64,
    relayouts: u64,
    layout_epoch: u64,
    decisions: u64,
    /// Observed↔baseline exit-rate divergence before the first
    /// relayout; negative when unmeasured.
    pre_divergence: f64,
    /// Divergence after the last relayout; negative when unmeasured
    /// (e.g. no relayout committed).
    post_divergence: f64,
    /// Both runs completed every admitted request.
    exact: bool,
}

fn deployment_for(
    bench: &dyn Benchmark,
    machine: &MachineDescription,
) -> (Compiler, Deployment, Profile) {
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "serving", |_| ())
        .expect("profiles");
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let plan = compiler.synthesize(&profile, machine, &SynthesisOptions::default(), &mut rng);
    let deployment = compiler.deploy(&plan);
    (compiler, deployment, profile)
}

/// Serves `total` Poisson arrivals at `rate`; returns the report and
/// the wall seconds from first arrival to drain (worker spawn and
/// shutdown excluded).
fn serve_at(
    deployment: &Deployment,
    options: ServingOptions,
    rate: f64,
    seed: u64,
    total: usize,
) -> (ServingReport, f64) {
    let exec = ThreadedExecutor::default();
    let mut server =
        Server::start(&exec, deployment, RunOptions::default(), options).expect("server starts");
    let mut arrivals = Poisson::new(rate, seed);
    let t0 = std::time::Instant::now();
    server
        .serve(&mut arrivals, total, |_| Box::new(()))
        .expect("serving run");
    server.await_idle().expect("serving drain");
    let elapsed = t0.elapsed().as_secs_f64();
    (server.finish().expect("serving finish"), elapsed)
}

/// Measures the intrinsic (uncontended) p99 once per app and derives
/// the SLO target from it. Hoisted out of the ladder: every rung gates
/// against this one number, so the target cannot drift with host noise
/// between rungs.
fn solo_slo(deployment: &Deployment, solo_reqs: usize) -> (u64, f64) {
    // Stepped pacing with micro-batches of one runs every request to
    // completion before the next is injected: uncontended latency.
    let solo_options = ServingOptions::new()
        .with_pacing(Pacing::Stepped)
        .with_batching(1, Duration::ZERO);
    let (solo, _) = serve_at(deployment, solo_options, 1_000.0, SEED, solo_reqs);
    let solo_p99_us = solo.latency_us.p99().max(1);
    let slo_p99_us = (solo_p99_us as f64 * SLO_MULTIPLIER).max(SLO_FLOOR_US);
    (solo_p99_us, slo_p99_us)
}

/// Serves `total` shifting bursty arrivals (stepped pacing, a batch
/// window wide enough that a burst's requests actually overlap — which
/// is exactly where the layout matters) with adaptation optionally
/// armed. Returns the report and the layout the run ended on.
fn serve_shifted(
    deployment: &Deployment,
    policy: Option<AdaptPolicy>,
    total: usize,
) -> (ServingReport, bamboo::Layout) {
    let mut handle = DeploymentHandle::from_deployment(deployment.clone());
    if let Some(policy) = policy {
        handle = handle.with_adapt(policy);
    }
    let mut session = handle
        .serve(
            ServingOptions::new()
                .with_pacing(Pacing::Stepped)
                .with_batching(16, Duration::from_millis(4)),
        )
        .expect("server starts");
    // A Markov-modulated mix: calm 400/s punctuated by 8000/s bursts —
    // the phase change the synthesized layout never saw. During bursts
    // the 4ms window fills whole batches, so the serialized stale
    // layout pays its full price.
    let mut arrivals = Bursty::new(400.0, 8_000.0, 0.25, SEED);
    session
        .serve(&mut arrivals, total, |_| Box::new(()))
        .expect("shifted serve");
    let snapshot = session.snapshot();
    (session.stop().expect("shifted finish"), snapshot.layout)
}

/// The adaptive-vs-frozen comparison. Both start from the same
/// deliberately stale layout (every instance on core 0). The frozen run
/// keeps it end to end. The adaptive run hot-migrates off it mid-stream;
/// the layout it converges on is then replayed over the same mix, so
/// `adaptive_p99_us` is the post-relayout latency uncontaminated by the
/// stale warmup phase (`midrun_p99_us` keeps the contaminated number).
fn adapt_comparison(
    deployment: &Deployment,
    profile: &Profile,
    machine: &MachineDescription,
    total: usize,
) -> AdaptOutcome {
    let mut squeezed = deployment.clone();
    for inst in &mut squeezed.layout.instances {
        inst.core = CoreId::new(0);
    }
    // Best p99 over reps of a fixed-layout leg; exact accounting must
    // hold on every rep.
    let best_p99 = |layout: &Deployment, exact: &mut bool| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..ADAPT_REPS {
            let (report, _) = serve_shifted(layout, None, total);
            *exact &= report.completed == total as u64;
            best = best.min(report.latency_us.p99());
        }
        best
    };
    let mut exact = true;
    let frozen_p99_us = best_p99(&squeezed, &mut exact);
    let policy = AdaptPolicy::new(machine.clone())
        .with_min_invocations(16)
        .with_baseline(profile.clone())
        .with_seed(SEED);
    let (adaptive, adapted_layout) = serve_shifted(&squeezed, Some(policy), total);
    exact &= adaptive.completed == total as u64;
    let mut adapted = squeezed.clone();
    for (inst, landed) in adapted
        .layout
        .instances
        .iter_mut()
        .zip(&adapted_layout.instances)
    {
        inst.core = landed.core;
    }
    let adaptive_p99_us = best_p99(&adapted, &mut exact);
    let adapt = adaptive.adapt.clone().unwrap_or_default();
    AdaptOutcome {
        frozen_p99_us,
        adaptive_p99_us,
        midrun_p99_us: adaptive.latency_us.p99(),
        relayouts: adapt.relayouts,
        layout_epoch: adaptive.layout_epoch,
        decisions: adapt.decisions,
        pre_divergence: adapt.pre_divergence.unwrap_or(-1.0),
        post_divergence: adapt.post_divergence.unwrap_or(-1.0),
        exact,
    }
}

/// Per-mode request counts and rep counts for one sweep (full vs
/// smoke).
struct Load {
    solo_reqs: usize,
    level_reqs: usize,
    max_levels: usize,
    adapt_reqs: usize,
    scope_reqs: usize,
    scope_reps: usize,
}

fn sweep(bench: &dyn Benchmark, machine: &MachineDescription, load: &Load) -> Sweep {
    let (_compiler, deployment, profile) = deployment_for(bench, machine);
    let (solo_p99_us, slo_p99_us) = solo_slo(&deployment, load.solo_reqs);
    let adapt = adapt_comparison(&deployment, &profile, machine, load.adapt_reqs);

    let mut levels = Vec::new();
    let mut sustainable = 0usize;
    let mut max_sustainable_rps = 0.0;
    let mut rate = START_RPS;
    for step in 0..load.max_levels {
        let (report, elapsed) = serve_at(
            &deployment,
            ServingOptions::new(),
            rate,
            SEED + step as u64,
            load.level_reqs,
        );
        let level = Level::from_report(rate, &report, elapsed);
        let sustained = level.sustained(slo_p99_us);
        levels.push(level);
        if !sustained {
            break;
        }
        sustainable = levels.len() - 1;
        max_sustainable_rps = rate;
        rate *= 2.0;
    }

    // Scope overhead mid-curve: half the sustainable rate (or the
    // first rung when nothing sustained), away from the knee where
    // p99 is all host noise.
    let scope_rate = if max_sustainable_rps > 0.0 {
        max_sustainable_rps * SCOPE_LOAD_FRACTION
    } else {
        START_RPS
    };
    let scope = scope_comparison(&deployment, scope_rate, load.scope_reqs, load.scope_reps);

    Sweep {
        name: bench.name().to_string(),
        solo_p99_us,
        slo_p99_us,
        max_sustainable_rps,
        sustainable,
        levels,
        adapt,
        scope,
    }
}

fn json_block(s: &Sweep) -> String {
    let at = &s.levels[s.sustainable];
    let levels: Vec<String> = s
        .levels
        .iter()
        .map(|l| format!("        {}", l.json()))
        .collect();
    let a = &s.adapt;
    let adapt = format!(
        "{{ \"frozen_p99_us\": {}, \"adaptive_p99_us\": {}, \"midrun_p99_us\": {}, \
         \"relayouts\": {}, \
         \"layout_epoch\": {}, \"decisions\": {}, \"pre_divergence\": {:.6}, \
         \"post_divergence\": {:.6}, \"exact\": {} }}",
        a.frozen_p99_us,
        a.adaptive_p99_us,
        a.midrun_p99_us,
        a.relayouts,
        a.layout_epoch,
        a.decisions,
        a.pre_divergence,
        a.post_divergence,
        a.exact,
    );
    let sc = &s.scope;
    let scope = format!(
        "{{ \"off_p99_us\": {}, \"on_p99_us\": {}, \"off_rps\": {:.1}, \"on_rps\": {:.1} }}",
        sc.off_p99_us, sc.on_p99_us, sc.off_rps, sc.on_rps,
    );
    format!(
        "    \"{}\": {{\n      \"solo_p99_us\": {}, \"slo_p99_us\": {:.1}, \"max_sustainable_rps\": {:.1},\n      \"at_sustainable\": {},\n      \"adapt\": {},\n      \"scope\": {},\n      \"levels\": [\n{}\n      ]\n    }}",
        s.name,
        s.solo_p99_us,
        s.slo_p99_us,
        s.max_sustainable_rps,
        at.json(),
        adapt,
        scope,
        levels.join(",\n"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `cargo bench` always injects `--bench`; an explicit `--test`
    // (the CI smoke step) wins over it.
    let full = args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test");
    let machine = MachineDescription::n_cores(CORES);
    let apps: Vec<&dyn Benchmark> = if full {
        vec![
            &bamboo_apps::kmeans::KMeans,
            &bamboo_apps::filterbank::FilterBank,
            &bamboo_apps::montecarlo::MonteCarlo,
            &bamboo_apps::series::Series,
        ]
    } else {
        vec![
            &bamboo_apps::kmeans::KMeans,
            &bamboo_apps::filterbank::FilterBank,
        ]
    };
    let load = if full {
        Load {
            solo_reqs: 12,
            level_reqs: 40,
            max_levels: MAX_LEVELS,
            adapt_reqs: ADAPT_REQS,
            scope_reqs: SCOPE_REQS,
            scope_reps: SCOPE_REPS,
        }
    } else {
        Load {
            solo_reqs: 4,
            level_reqs: 6,
            max_levels: 1,
            adapt_reqs: ADAPT_REQS_SMOKE,
            scope_reqs: SCOPE_REQS_SMOKE,
            scope_reps: 1,
        }
    };

    let mut blocks = Vec::new();
    for bench in apps {
        let s = sweep(bench, &machine, &load);
        let at = &s.levels[s.sustainable];
        println!(
            "bench serving/{:<12} solo p99 {:>7}us   SLO {:>9.0}us   sustainable {:>7.0} rps (p99 {}us, {} levels)",
            s.name, s.solo_p99_us, s.slo_p99_us, s.max_sustainable_rps, at.p99_us, s.levels.len(),
        );
        println!(
            "      adapt/{:<12} frozen p99 {:>7}us → adaptive p99 {:>7}us   {} relayouts (epoch {}, {} decisions, exact={})",
            s.name,
            s.adapt.frozen_p99_us,
            s.adapt.adaptive_p99_us,
            s.adapt.relayouts,
            s.adapt.layout_epoch,
            s.adapt.decisions,
            s.adapt.exact,
        );
        println!(
            "      scope/{:<12} off p99 {:>7}us → on p99 {:>7}us ({:+.1}%)   off {:>7.0} rps → on {:>7.0} rps",
            s.name,
            s.scope.off_p99_us,
            s.scope.on_p99_us,
            (s.scope.on_p99_us as f64 / s.scope.off_p99_us as f64 - 1.0) * 100.0,
            s.scope.off_rps,
            s.scope.on_rps,
        );
        blocks.push(json_block(&s));
    }

    if full {
        let json = format!(
            "{{\n  \"machine_cores\": {},\n  \"scale\": \"small\",\n  \"seed\": {},\n  \"slo_multiplier\": {:.1},\n  \"benches\": {{\n{}\n  }}\n}}\n",
            machine.core_count(),
            SEED,
            SLO_MULTIPLIER,
            blocks.join(",\n"),
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
        std::fs::write(path, json).expect("write BENCH_serving.json");
        println!("wrote {path}");
    } else {
        println!("smoke ok (pass --bench for the measured sweep)");
    }
}
