//! A/B benchmark for the implementation synthesizer's wall time.
//!
//! Measures end-to-end synthesis (random starts → directed simulated
//! annealing) for all six paper benchmarks targeting the 62-core
//! TILEPro64 model, comparing the **serial** configuration (1 worker
//! thread, simulation memoization off — the pre-parallelization shape)
//! against the **parallel** configuration (`SynthesisOptions::default()`:
//! candidate evaluations fanned out over every available core,
//! fingerprint-keyed simulation cache on). Because evaluation is pure
//! and all randomness stays on the driver thread, both configurations
//! synthesize bit-identical plans from the same seed — the harness
//! asserts it on every run. Writes `BENCH_dsa.json` at the repository
//! root; `bamboo-doctor --check` gates on it.
//!
//! Modes (custom `main`, `harness = false`):
//! - `--bench` (what `cargo bench` passes): full measured run + JSON.
//! - `--test` (CI smoke) or no recognized flag (`cargo test` executes
//!   `harness = false` bench binaries): one tiny rep, no JSON.

use bamboo::{
    Compiler, DsaOptions, MachineDescription, Profile, SynthesisOptions, SynthesisResult,
};
use bamboo_apps::Scale;
use rand::SeedableRng;
use std::time::Duration;

/// Synthesis seed shared with `bamboo-doctor --check`.
const SEED: u64 = 42;

/// One configuration's aggregate over the measured reps.
struct Outcome {
    /// Fastest rep — the standard noise-robust estimator for a
    /// fixed-work benchmark (all slowdown sources are additive).
    best_wall: Duration,
    median_wall: Duration,
    plan: SynthesisResult,
}

impl Outcome {
    /// Simulations per second (best rep).
    fn sims_per_sec(&self) -> f64 {
        self.plan.stats.simulations as f64 / self.best_wall.as_secs_f64()
    }
}

/// The serial A/B leg: one worker thread, no memoization — the shape of
/// the synthesizer before evaluation was parallelized.
fn serial_options() -> SynthesisOptions {
    SynthesisOptions {
        dsa: DsaOptions {
            memoize: false,
            ..DsaOptions::default()
        },
        ..SynthesisOptions::default()
    }
    .with_threads(1)
}

fn measure(
    compiler: &Compiler,
    profile: &Profile,
    machine: &MachineDescription,
    opts: &SynthesisOptions,
    reps: usize,
) -> Outcome {
    // Warmup rep (allocator, thread spawn paths).
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let _ = compiler.synthesize(profile, machine, opts, &mut rng);
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
        let t0 = std::time::Instant::now();
        let plan = compiler.synthesize(profile, machine, opts, &mut rng);
        walls.push(t0.elapsed());
        last = Some(plan);
    }
    walls.sort();
    Outcome {
        best_wall: walls[0],
        median_wall: walls[walls.len() / 2],
        plan: last.expect("at least one rep"),
    }
}

fn json_block(name: &str, serial: &Outcome, parallel: &Outcome) -> String {
    let speedup = serial.best_wall.as_secs_f64() / parallel.best_wall.as_secs_f64();
    format!(
        concat!(
            "    \"{name}\": {{\n",
            "      \"serial_wall_us\": {sw}, \"serial_median_wall_us\": {sm}, ",
            "\"parallel_wall_us\": {pw}, \"parallel_median_wall_us\": {pm},\n",
            "      \"wall_speedup\": {sp:.3}, \"sims_per_sec_serial\": {ss:.1}, ",
            "\"sims_per_sec_parallel\": {ps:.1},\n",
            "      \"simulations\": {sims}, \"cache_hits\": {hits}, ",
            "\"serial_simulations\": {ssims}, \"best_makespan\": {mk}\n",
            "    }}"
        ),
        name = name,
        sw = serial.best_wall.as_micros(),
        sm = serial.median_wall.as_micros(),
        pw = parallel.best_wall.as_micros(),
        pm = parallel.median_wall.as_micros(),
        sp = speedup,
        ss = serial.sims_per_sec(),
        ps = parallel.sims_per_sec(),
        sims = parallel.plan.stats.simulations,
        hits = parallel.plan.stats.cache_hits,
        ssims = serial.plan.stats.simulations,
        mk = parallel.plan.estimate.makespan,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `cargo bench` always injects `--bench`; an explicit `--test`
    // (the CI smoke step) wins over it.
    let full = args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test");
    let (scale, reps) = if full {
        (Scale::Original, 5)
    } else {
        (Scale::Small, 1)
    };
    let machine = MachineDescription::tilepro64();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut blocks = Vec::new();
    for bench in bamboo_apps::all() {
        let compiler = bench.compiler(scale);
        let (profile, _, ()) = compiler
            .profile_run(None, "dsa-bench", |_| ())
            .expect("profile run");
        let serial = measure(&compiler, &profile, &machine, &serial_options(), reps);
        let parallel = measure(
            &compiler,
            &profile,
            &machine,
            &SynthesisOptions::default(),
            reps,
        );
        // The tentpole invariant: parallel, memoized synthesis is
        // bit-identical to the serial schedule.
        assert_eq!(
            parallel.plan.estimate.makespan,
            serial.plan.estimate.makespan,
            "{}: parallel synthesis diverged from serial",
            bench.name(),
        );
        assert_eq!(
            parallel.plan.layout,
            serial.plan.layout,
            "{}: parallel layout diverged from serial",
            bench.name(),
        );
        println!(
            "bench dsa/{:<12} serial {:>9.3?}   parallel {:>9.3?}   ({:.2}x, {} sims, {} cache hits)",
            bench.name(),
            serial.best_wall,
            parallel.best_wall,
            serial.best_wall.as_secs_f64() / parallel.best_wall.as_secs_f64(),
            parallel.plan.stats.simulations,
            parallel.plan.stats.cache_hits,
        );
        blocks.push(json_block(bench.name(), &serial, &parallel));
    }

    if full {
        let json = format!(
            concat!(
                "{{\n  \"machine_cores\": {},\n  \"scale\": \"original\",\n",
                "  \"reps\": {},\n  \"host_threads\": {},\n  \"benches\": {{\n{}\n  }}\n}}\n"
            ),
            machine.core_count(),
            reps,
            host_threads,
            blocks.join(",\n"),
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dsa.json");
        std::fs::write(path, json).expect("write BENCH_dsa.json");
        println!("wrote {path}");
    } else {
        println!("smoke ok (pass --bench for the measured run)");
    }
}
