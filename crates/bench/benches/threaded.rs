//! A/B benchmark for the threaded runtime's dispatch hot path.
//!
//! Measures dispatch throughput (invocations per wall millisecond) and
//! makespan on kmeans and filterbank deployments synthesized for the
//! paper's 62-core TILEPro64, comparing [`RunOptions::baseline()`] (the
//! pre-redesign shape: global router stripe, no stealing, 300µs
//! sleep-polling quiescence) against [`RunOptions::default()`] (sharded
//! router, same-group stealing, event-driven quiescence). Writes the
//! results to `BENCH_threaded.json` at the repository root.
//!
//! Modes (custom `main`, `harness = false`):
//! - `--bench` (what `cargo bench` passes): full measured run + JSON.
//! - `--test` (CI smoke) or no recognized flag (`cargo test` executes
//!   `harness = false` bench binaries): one tiny rep, no JSON.

use bamboo::{
    Compiler, Deployment, MachineDescription, RunOptions, SynthesisOptions, ThreadedExecutor,
};
use bamboo_apps::{Benchmark, Scale};
use rand::SeedableRng;
use std::time::Duration;

/// One configuration's aggregate over the measured reps.
struct Outcome {
    /// Fastest rep — the standard noise-robust estimator for a
    /// fixed-work benchmark (all slowdown sources are additive).
    best_wall: Duration,
    median_wall: Duration,
    invocations: u64,
    lock_retries: u64,
    steals: u64,
}

impl Outcome {
    /// Invocations per wall millisecond (best rep).
    fn throughput(&self) -> f64 {
        self.invocations as f64 / (self.best_wall.as_secs_f64() * 1e3)
    }
}

fn measure(deployment: &Deployment, baseline: bool, reps: usize) -> Outcome {
    let exec = ThreadedExecutor::default();
    let options = || {
        if baseline {
            RunOptions::baseline()
        } else {
            RunOptions::default()
        }
    };
    // Warmup rep (thread spawn paths, allocator).
    let _ = exec.run(deployment, options()).expect("warmup run");
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let report = exec.run(deployment, options()).expect("measured run");
        walls.push(report.wall);
        last = Some(report);
    }
    walls.sort();
    let report = last.expect("at least one rep");
    Outcome {
        best_wall: walls[0],
        median_wall: walls[walls.len() / 2],
        invocations: report.invocations,
        lock_retries: report.lock_retries,
        steals: report.steals,
    }
}

fn deployment_for(
    bench: &dyn Benchmark,
    scale: Scale,
    machine: &MachineDescription,
) -> (Compiler, Deployment) {
    let compiler = bench.compiler(scale);
    let (profile, _, ()) = compiler
        .profile_run(None, "bench", |_| ())
        .expect("profiles");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let plan = compiler.synthesize(&profile, machine, &SynthesisOptions::default(), &mut rng);
    let deployment = compiler.deploy(&plan);
    (compiler, deployment)
}

fn json_block(name: &str, base: &Outcome, opt: &Outcome) -> String {
    let speedup = opt.throughput() / base.throughput();
    format!(
        concat!(
            "    \"{name}\": {{\n",
            "      \"baseline\": {{ \"best_wall_us\": {bb}, \"median_wall_us\": {bw}, \"invocations\": {bi}, ",
            "\"throughput_inv_per_ms\": {bt:.2}, \"lock_retries\": {br}, \"steals\": {bs} }},\n",
            "      \"optimized\": {{ \"best_wall_us\": {ob}, \"median_wall_us\": {ow}, \"invocations\": {oi}, ",
            "\"throughput_inv_per_ms\": {ot:.2}, \"lock_retries\": {or}, \"steals\": {os} }},\n",
            "      \"dispatch_throughput_speedup\": {sp:.3}\n",
            "    }}"
        ),
        name = name,
        bb = base.best_wall.as_micros(),
        bw = base.median_wall.as_micros(),
        bi = base.invocations,
        bt = base.throughput(),
        br = base.lock_retries,
        bs = base.steals,
        ob = opt.best_wall.as_micros(),
        ow = opt.median_wall.as_micros(),
        oi = opt.invocations,
        ot = opt.throughput(),
        or = opt.lock_retries,
        os = opt.steals,
        sp = speedup,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `cargo bench` always injects `--bench`; an explicit `--test`
    // (the CI smoke step) wins over it.
    let full = args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test");
    let (scale, reps) = if full {
        (Scale::Small, 15)
    } else {
        (Scale::Small, 1)
    };
    let machine = MachineDescription::tilepro64();

    let mut blocks = Vec::new();
    for bench in [
        &bamboo_apps::kmeans::KMeans as &dyn Benchmark,
        &bamboo_apps::filterbank::FilterBank,
    ] {
        let (_compiler, deployment) = deployment_for(bench, scale, &machine);
        let base = measure(&deployment, true, reps);
        let opt = measure(&deployment, false, reps);
        println!(
            "bench threaded/{:<12} baseline {:>8.2} inv/ms   optimized {:>8.2} inv/ms   ({:.2}x, {} steals)",
            bench.name(),
            base.throughput(),
            opt.throughput(),
            opt.throughput() / base.throughput(),
            opt.steals,
        );
        blocks.push(json_block(bench.name(), &base, &opt));
    }

    if full {
        let json = format!(
            "{{\n  \"machine_cores\": {},\n  \"scale\": \"small\",\n  \"reps\": {},\n  \"benches\": {{\n{}\n  }}\n}}\n",
            machine.core_count(),
            reps,
            blocks.join(",\n"),
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_threaded.json");
        std::fs::write(path, json).expect("write BENCH_threaded.json");
        println!("wrote {path}");
    } else {
        println!("smoke ok (pass --bench for the measured run)");
    }
}
