//! Criterion bench: ablations of the synthesis design choices DESIGN.md
//! §6 lists. Each measures the *quality* proxy (estimated makespan of the
//! layout a fixed budget finds) via wall time of reaching it:
//!
//! - DSA vs pure random search (same simulation budget);
//! - exit-sequence replay vs aggregate Markov prediction;
//! - transfer-cost sensitivity (network-free machine vs default).

use bamboo::schedule::{
    compute_replication, optimize, random_layouts, scc_tree_transform, simulate, DsaOptions,
    SimOptions,
};
use bamboo::MachineDescription;
use bamboo_apps::{Benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let bench = bamboo_apps::montecarlo::MonteCarlo;
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "bench", |_| ())
        .expect("profiles");
    let spec = &compiler.program.spec;
    let machine = MachineDescription::n_cores(8);
    let graph = scc_tree_transform(&compiler.graph_with_profile(&profile));
    let repl = compute_replication(spec, &graph, &profile, 8);

    c.bench_function("search_dsa", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let starts = random_layouts(&graph, &repl, 8, 2, &mut rng);
            let (_, result, _) = optimize(
                spec,
                &graph,
                &profile,
                &machine,
                starts,
                &DsaOptions {
                    max_iterations: 10,
                    ..DsaOptions::default()
                },
                &mut rng,
            );
            black_box(result.makespan)
        });
    });

    c.bench_function("search_random_same_budget", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let candidates = random_layouts(&graph, &repl, 8, 60, &mut rng);
            let best = candidates
                .iter()
                .map(|l| {
                    simulate(spec, &graph, l, &profile, &machine, &SimOptions::default()).makespan
                })
                .min()
                .expect("non-empty");
            black_box(best)
        });
    });

    let layout = bamboo::schedule::spread_layout(&graph, &repl, 8);
    c.bench_function("sim_replay_mode", |b| {
        b.iter(|| {
            black_box(simulate(
                spec,
                &graph,
                &layout,
                &profile,
                &machine,
                &SimOptions::default(),
            ))
        });
    });
    c.bench_function("sim_aggregate_mode", |b| {
        b.iter(|| {
            black_box(simulate(
                spec,
                &graph,
                &layout,
                &profile,
                &machine,
                &SimOptions {
                    replay: false,
                    ..SimOptions::default()
                },
            ))
        });
    });
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
