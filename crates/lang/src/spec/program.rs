//! The program specification model: the hub consumed by analyses, the
//! implementation synthesizer, and the runtime.
//!
//! A [`ProgramSpec`] captures everything Bamboo's *task declaration
//! language* expresses — classes with flags, tag types, tasks with
//! parameter guards, declared exits, and object allocation sites — without
//! the imperative task bodies. Bodies are attached separately: interpreted
//! (DSL IR, see [`crate::ir`]) or native closures (see the runtime crate).

use crate::ids::{AllocSiteId, ClassId, ExitId, FlagId, ParamIdx, TagTypeId, TagVarId, TaskId};
use crate::spec::flagset::{FlagSet, MAX_FLAGS};
use crate::spec::guard::FlagExpr;
use std::collections::HashMap;
use std::fmt;

/// A class declaration: a name plus its flag (abstract state) declarations.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ClassSpec {
    /// The class name.
    pub name: String,
    /// Names of the declared flags; `FlagId` indexes this list.
    pub flags: Vec<String>,
}

impl ClassSpec {
    /// Looks up a flag by name.
    pub fn flag_by_name(&self, name: &str) -> Option<FlagId> {
        self.flags.iter().position(|f| f == name).map(FlagId::new)
    }

    /// Returns the name of `flag`.
    ///
    /// # Panics
    ///
    /// Panics if `flag` does not belong to this class.
    pub fn flag_name(&self, flag: FlagId) -> &str {
        &self.flags[flag.index()]
    }
}

/// A tag type declaration (`tagtype name;`).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TagTypeSpec {
    /// The tag type's name.
    pub name: String,
}

/// A tag constraint in a parameter's `with` clause: the parameter object
/// must be bound to a tag instance of `tag_type`, and that instance is bound
/// to the task-scoped tag variable `var`. Two parameters constrained by the
/// same `var` must be bound to the *same* tag instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TagConstraint {
    /// The required tag type.
    pub tag_type: TagTypeId,
    /// The task-scoped tag variable the matched instance binds to.
    pub var: TagVarId,
}

/// A task parameter declaration: `Type name in flagexp with tagexp`.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ParamSpec {
    /// Parameter name (for diagnostics and pretty-printing).
    pub name: String,
    /// The class objects must belong to.
    pub class: ClassId,
    /// The guard over the object's flags.
    pub guard: FlagExpr,
    /// Tag constraints from the `with` clause (empty if none).
    pub tags: Vec<TagConstraint>,
}

/// An update to one parameter object performed at task exit or object
/// allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FlagOrTagAction {
    /// `flagname := bool`.
    SetFlag(FlagId, bool),
    /// `add tagvar` — bind the instance in the tag variable to the object.
    AddTag(TagVarId),
    /// `clear tagvar` — unbind that instance from the object.
    ClearTag(TagVarId),
}

/// One declared exit point of a task (`taskexit(...)` in the body).
///
/// An exit lists, per parameter, the flag/tag updates applied when the task
/// leaves through this exit. Parameters not mentioned keep their state.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExitSpec {
    /// Optional label for diagnostics (e.g. `"all_processed"`).
    pub label: String,
    /// Updates per parameter, in arbitrary order; at most one entry per
    /// parameter.
    pub actions: Vec<(ParamIdx, Vec<FlagOrTagAction>)>,
}

impl ExitSpec {
    /// Returns the flag valuation a parameter transitions to when the task
    /// leaves through this exit, given the flags it had when matched.
    ///
    /// Tag actions are ignored here; callers interested in tag effects
    /// should inspect [`ExitSpec::actions`] directly.
    pub fn apply_flags(&self, param: ParamIdx, before: FlagSet) -> FlagSet {
        let mut flags = before;
        if let Some((_, actions)) = self.actions.iter().find(|(p, _)| *p == param) {
            for action in actions {
                if let FlagOrTagAction::SetFlag(flag, value) = action {
                    flags.set(*flag, *value);
                }
            }
        }
        flags
    }

    /// Returns the tag actions declared for `param` through this exit.
    pub fn tag_actions(&self, param: ParamIdx) -> impl Iterator<Item = FlagOrTagAction> + '_ {
        self.actions
            .iter()
            .filter(move |(p, _)| *p == param)
            .flat_map(|(_, actions)| actions.iter().copied())
            .filter(|a| !matches!(a, FlagOrTagAction::SetFlag(..)))
    }
}

/// An object allocation site inside a task body:
/// `new C(args){flag := v, add t}`.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AllocSiteSpec {
    /// The class of the allocated objects.
    pub class: ClassId,
    /// Flags explicitly initialized at allocation (unmentioned flags start
    /// false).
    pub initial_flags: Vec<(FlagId, bool)>,
    /// Tag variables whose instances are bound to the new object.
    pub bound_tags: Vec<TagVarId>,
}

impl AllocSiteSpec {
    /// Returns the flag valuation of objects created at this site.
    pub fn initial_flag_set(&self) -> FlagSet {
        let mut flags = FlagSet::new();
        for (flag, value) in &self.initial_flags {
            flags.set(*flag, *value);
        }
        flags
    }
}

/// A tag variable declared in a task's scope.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TagVarSpec {
    /// The variable's name.
    pub name: String,
    /// The tag type of instances it holds.
    pub tag_type: TagTypeId,
    /// Whether the variable is bound by a parameter's `with` clause
    /// (`true`) or by a `new tag` statement in the body (`false`).
    pub from_param: bool,
}

/// A task declaration: guards, exits, allocation sites, tag variables.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TaskSpec {
    /// The task's name.
    pub name: String,
    /// Parameter declarations; [`ParamIdx`] indexes this list.
    pub params: Vec<ParamSpec>,
    /// Declared exit points; [`ExitId`] indexes this list. Every task has at
    /// least one exit.
    pub exits: Vec<ExitSpec>,
    /// Object allocation sites; [`AllocSiteId`] indexes this list.
    pub alloc_sites: Vec<AllocSiteSpec>,
    /// Tag variables in scope; [`TagVarId`] indexes this list.
    pub tag_vars: Vec<TagVarSpec>,
}

impl TaskSpec {
    /// Returns the parameter spec at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn param(&self, idx: ParamIdx) -> &ParamSpec {
        &self.params[idx.index()]
    }

    /// Returns the exit spec for `exit`.
    ///
    /// # Panics
    ///
    /// Panics if `exit` is out of range.
    pub fn exit(&self, exit: ExitId) -> &ExitSpec {
        &self.exits[exit.index()]
    }

    /// Returns whether every parameter shares at least one common tag
    /// variable sourced from the `with` clauses — the condition under which
    /// the runtime may replicate a multi-parameter task and route by tag
    /// hash (paper §4.3.4).
    pub fn all_params_share_tag(&self) -> bool {
        if self.params.is_empty() {
            return false;
        }
        let first: Vec<TagVarId> = self.params[0].tags.iter().map(|t| t.var).collect();
        first.iter().any(|var| {
            self.params
                .iter()
                .all(|p| p.tags.iter().any(|t| t.var == *var))
        })
    }
}

/// A complete Bamboo program specification.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProgramSpec {
    /// The program's name.
    pub name: String,
    /// Class declarations; [`ClassId`] indexes this list.
    pub classes: Vec<ClassSpec>,
    /// Tag type declarations; [`TagTypeId`] indexes this list.
    pub tag_types: Vec<TagTypeSpec>,
    /// Task declarations; [`TaskId`] indexes this list.
    pub tasks: Vec<TaskSpec>,
    /// The class whose creation bootstraps the program (the
    /// `StartupObject` class), with the flag set at startup.
    pub startup: StartupSpec,
}

/// Identifies the startup object class and initial flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StartupSpec {
    /// The startup class (conventionally named `StartupObject`).
    pub class: ClassId,
    /// The flag set on the injected instance (conventionally
    /// `initialstate`).
    pub flag: FlagId,
}

impl ProgramSpec {
    /// Returns the class spec for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class(&self, class: ClassId) -> &ClassSpec {
        &self.classes[class.index()]
    }

    /// Returns the task spec for `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn task(&self, task: TaskId) -> &TaskSpec {
        &self.tasks[task.index()]
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(ClassId::new)
    }

    /// Looks up a task by name.
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.tasks
            .iter()
            .position(|t| t.name == name)
            .map(TaskId::new)
    }

    /// Looks up a tag type by name.
    pub fn tag_type_by_name(&self, name: &str) -> Option<TagTypeId> {
        self.tag_types
            .iter()
            .position(|t| t.name == name)
            .map(TagTypeId::new)
    }

    /// Iterates over `(TaskId, &TaskSpec)`.
    pub fn tasks_enumerated(&self) -> impl Iterator<Item = (TaskId, &TaskSpec)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId::new(i), t))
    }

    /// Iterates over `(ClassId, &ClassSpec)`.
    pub fn classes_enumerated(&self) -> impl Iterator<Item = (ClassId, &ClassSpec)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId::new(i), c))
    }

    /// Returns, per class, the set of flags mentioned in any task guard —
    /// the "guard-relevant" flags that define the class's abstract states.
    ///
    /// Flags never consulted by a guard do not influence dispatch, so the
    /// dependence analysis (paper §4.1) restricts abstract state nodes to
    /// this set to keep the state machines small.
    pub fn guard_relevant_flags(&self) -> Vec<FlagSet> {
        let mut relevant = vec![FlagSet::new(); self.classes.len()];
        for task in &self.tasks {
            for param in &task.params {
                let mask = param.guard.mentioned_flags();
                relevant[param.class.index()] = relevant[param.class.index()].union(mask);
            }
        }
        // Flags assigned at exits or allocation also shape states insofar as
        // they are guard-relevant somewhere; the guard scan above suffices.
        relevant
    }

    /// Validates internal consistency, returning a list of problems
    /// (empty when the spec is well-formed).
    ///
    /// Checks: id ranges, flag counts, duplicate names, exit actions refer
    /// to declared params/flags/tag vars, allocation-site flags belong to
    /// the allocated class, and the startup class/flag exist.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut seen = HashMap::new();
        for (i, class) in self.classes.iter().enumerate() {
            if let Some(prev) = seen.insert(class.name.clone(), i) {
                problems.push(format!(
                    "duplicate class name `{}` (classes {prev} and {i})",
                    class.name
                ));
            }
            if class.flags.len() > MAX_FLAGS {
                problems.push(format!(
                    "class `{}` declares {} flags; the limit is {MAX_FLAGS}",
                    class.name,
                    class.flags.len()
                ));
            }
        }
        if self.startup.class.index() >= self.classes.len() {
            problems.push("startup class id out of range".to_string());
        } else {
            let class = self.class(self.startup.class);
            if self.startup.flag.index() >= class.flags.len() {
                problems.push(format!(
                    "startup flag out of range for class `{}`",
                    class.name
                ));
            }
        }
        for task in &self.tasks {
            self.validate_task(task, &mut problems);
        }
        problems
    }

    fn validate_task(&self, task: &TaskSpec, problems: &mut Vec<String>) {
        let bad = |msg: String| format!("task `{}`: {}", task.name, msg);
        if task.exits.is_empty() {
            problems.push(bad("declares no exits".to_string()));
        }
        if task.params.is_empty() {
            problems.push(bad(
                "declares no parameters; a task with no parameter objects can never be invoked"
                    .to_string(),
            ));
        }
        for param in &task.params {
            if param.class.index() >= self.classes.len() {
                problems.push(bad(format!(
                    "parameter `{}` has out-of-range class",
                    param.name
                )));
                continue;
            }
            let class = self.class(param.class);
            for flag in param.guard.mentioned_flags().iter() {
                if flag.index() >= class.flags.len() {
                    problems.push(bad(format!(
                        "guard of `{}` mentions unknown flag {flag} of class `{}`",
                        param.name, class.name
                    )));
                }
            }
            for tc in &param.tags {
                if tc.tag_type.index() >= self.tag_types.len() {
                    problems.push(bad(format!(
                        "parameter `{}` constrains unknown tag type",
                        param.name
                    )));
                }
                if tc.var.index() >= task.tag_vars.len() {
                    problems.push(bad(format!(
                        "parameter `{}` binds unknown tag variable",
                        param.name
                    )));
                }
            }
        }
        for exit in &task.exits {
            for (param_idx, actions) in &exit.actions {
                if param_idx.index() >= task.params.len() {
                    problems.push(bad(format!(
                        "exit `{}` updates unknown parameter {param_idx}",
                        exit.label
                    )));
                    continue;
                }
                let class = self.class(task.params[param_idx.index()].class);
                for action in actions {
                    match action {
                        FlagOrTagAction::SetFlag(flag, _) => {
                            if flag.index() >= class.flags.len() {
                                problems.push(bad(format!(
                                    "exit `{}` sets unknown flag {flag} on class `{}`",
                                    exit.label, class.name
                                )));
                            }
                        }
                        FlagOrTagAction::AddTag(var) | FlagOrTagAction::ClearTag(var) => {
                            if var.index() >= task.tag_vars.len() {
                                problems.push(bad(format!(
                                    "exit `{}` references unknown tag variable",
                                    exit.label
                                )));
                            }
                        }
                    }
                }
            }
        }
        for site in &task.alloc_sites {
            if site.class.index() >= self.classes.len() {
                problems.push(bad("allocation site has out-of-range class".to_string()));
                continue;
            }
            let class = self.class(site.class);
            for (flag, _) in &site.initial_flags {
                if flag.index() >= class.flags.len() {
                    problems.push(bad(format!(
                        "allocation site sets unknown flag {flag} on class `{}`",
                        class.name
                    )));
                }
            }
            for var in &site.bound_tags {
                if var.index() >= task.tag_vars.len() {
                    problems.push(bad("allocation site binds unknown tag variable".to_string()));
                }
            }
        }
    }

    /// Renders the spec as human-readable task declarations (diagnostic
    /// aid; not parseable source).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        for (id, task) in self.tasks_enumerated() {
            out.push_str(&format!("task {} ({id}):\n", task.name));
            for (i, p) in task.params.iter().enumerate() {
                out.push_str(&format!(
                    "  param {i}: {} {} in {}\n",
                    self.class(p.class).name,
                    p.name,
                    p.guard
                ));
            }
            for (i, e) in task.exits.iter().enumerate() {
                out.push_str(&format!(
                    "  exit {i} `{}`: {} action groups\n",
                    e.label,
                    e.actions.len()
                ));
            }
            for (i, s) in task.alloc_sites.iter().enumerate() {
                out.push_str(&format!(
                    "  alloc {i}: new {} {:?}\n",
                    self.class(s.class).name,
                    s.initial_flags
                ));
            }
        }
        out
    }
}

impl fmt::Display for ProgramSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program `{}` ({} classes, {} tasks)",
            self.name,
            self.classes.len(),
            self.tasks.len()
        )
    }
}

/// References an allocation site globally: which task, which site within it.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct GlobalAllocSite {
    /// The task containing the site.
    pub task: TaskId,
    /// The site within the task.
    pub site: AllocSiteId,
}

impl fmt::Display for GlobalAllocSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.task, self.site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ProgramSpec {
        ProgramSpec {
            name: "tiny".to_string(),
            classes: vec![
                ClassSpec {
                    name: "StartupObject".to_string(),
                    flags: vec!["initialstate".to_string()],
                },
                ClassSpec {
                    name: "Work".to_string(),
                    flags: vec!["ready".to_string(), "done".to_string()],
                },
            ],
            tag_types: vec![],
            tasks: vec![
                TaskSpec {
                    name: "startup".to_string(),
                    params: vec![ParamSpec {
                        name: "s".to_string(),
                        class: ClassId::new(0),
                        guard: FlagExpr::flag(FlagId::new(0)),
                        tags: vec![],
                    }],
                    exits: vec![ExitSpec {
                        label: "done".to_string(),
                        actions: vec![(
                            ParamIdx::new(0),
                            vec![FlagOrTagAction::SetFlag(FlagId::new(0), false)],
                        )],
                    }],
                    alloc_sites: vec![AllocSiteSpec {
                        class: ClassId::new(1),
                        initial_flags: vec![(FlagId::new(0), true)],
                        bound_tags: vec![],
                    }],
                    tag_vars: vec![],
                },
                TaskSpec {
                    name: "work".to_string(),
                    params: vec![ParamSpec {
                        name: "w".to_string(),
                        class: ClassId::new(1),
                        guard: FlagExpr::flag(FlagId::new(0))
                            .and(FlagExpr::flag(FlagId::new(1)).not()),
                        tags: vec![],
                    }],
                    exits: vec![ExitSpec {
                        label: String::new(),
                        actions: vec![(
                            ParamIdx::new(0),
                            vec![
                                FlagOrTagAction::SetFlag(FlagId::new(0), false),
                                FlagOrTagAction::SetFlag(FlagId::new(1), true),
                            ],
                        )],
                    }],
                    alloc_sites: vec![],
                    tag_vars: vec![],
                },
            ],
            startup: StartupSpec {
                class: ClassId::new(0),
                flag: FlagId::new(0),
            },
        }
    }

    #[test]
    fn tiny_spec_validates() {
        assert!(tiny_spec().validate().is_empty());
    }

    #[test]
    fn lookup_by_name() {
        let spec = tiny_spec();
        assert_eq!(spec.class_by_name("Work"), Some(ClassId::new(1)));
        assert_eq!(spec.task_by_name("work"), Some(TaskId::new(1)));
        assert_eq!(spec.task_by_name("missing"), None);
    }

    #[test]
    fn exit_apply_flags_transitions_state() {
        let spec = tiny_spec();
        let work = spec.task(TaskId::new(1));
        let before = FlagSet::new().with(FlagId::new(0), true);
        let after = work.exits[0].apply_flags(ParamIdx::new(0), before);
        assert!(!after.contains(FlagId::new(0)));
        assert!(after.contains(FlagId::new(1)));
    }

    #[test]
    fn guard_relevant_flags_cover_guards_only() {
        let spec = tiny_spec();
        let relevant = spec.guard_relevant_flags();
        assert_eq!(relevant[0].len(), 1);
        assert_eq!(relevant[1].len(), 2);
    }

    #[test]
    fn validation_detects_bad_exit_param() {
        let mut spec = tiny_spec();
        spec.tasks[1].exits[0].actions[0].0 = ParamIdx::new(9);
        let problems = spec.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("unknown parameter"));
    }

    #[test]
    fn validation_detects_unknown_flag_in_guard() {
        let mut spec = tiny_spec();
        spec.tasks[1].params[0].guard = FlagExpr::flag(FlagId::new(7));
        assert!(!spec.validate().is_empty());
    }

    #[test]
    fn validation_detects_duplicate_class() {
        let mut spec = tiny_spec();
        spec.classes.push(ClassSpec {
            name: "Work".to_string(),
            flags: vec![],
        });
        assert!(spec
            .validate()
            .iter()
            .any(|p| p.contains("duplicate class")));
    }

    #[test]
    fn allocation_site_initial_flags() {
        let spec = tiny_spec();
        let site = &spec.task(TaskId::new(0)).alloc_sites[0];
        assert!(site.initial_flag_set().contains(FlagId::new(0)));
    }

    #[test]
    fn shared_tag_detection() {
        let spec = tiny_spec();
        assert!(!spec.task(TaskId::new(0)).all_params_share_tag());
    }
}

#[cfg(test)]
mod param_validation_tests {
    use super::*;

    #[test]
    fn zero_parameter_tasks_are_rejected() {
        let spec = ProgramSpec {
            name: "z".to_string(),
            classes: vec![ClassSpec {
                name: "StartupObject".to_string(),
                flags: vec!["initialstate".to_string()],
            }],
            tag_types: vec![],
            tasks: vec![TaskSpec {
                name: "ghost".to_string(),
                params: vec![],
                exits: vec![ExitSpec::default()],
                alloc_sites: vec![],
                tag_vars: vec![],
            }],
            startup: StartupSpec {
                class: ClassId::new(0),
                flag: FlagId::new(0),
            },
        };
        let problems = spec.validate();
        assert!(
            problems.iter().any(|p| p.contains("no parameters")),
            "{problems:?}"
        );
    }
}
