//! The shared program specification model.
//!
//! Both frontends — the DSL compiler ([`crate::compile_source`]) and the
//! native [`crate::builder::ProgramBuilder`] — produce a [`ProgramSpec`].
//! Everything downstream (dependence analysis, disjointness analysis,
//! implementation synthesis, and the runtime) consumes this model.

mod flagset;
mod guard;
mod program;

pub use flagset::{FlagSet, MAX_FLAGS};
pub use guard::FlagExpr;
pub use program::{
    AllocSiteSpec, ClassSpec, ExitSpec, FlagOrTagAction, GlobalAllocSite, ParamSpec, ProgramSpec,
    StartupSpec, TagConstraint, TagTypeSpec, TagVarSpec, TaskSpec,
};
