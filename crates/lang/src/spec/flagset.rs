//! Compact bitset over the flags of a single class.

use crate::ids::FlagId;
use std::fmt;

/// The maximum number of flags a class may declare.
pub const MAX_FLAGS: usize = 64;

/// A set of flag bits for one object, indexed by [`FlagId`].
///
/// Bamboo objects may simultaneously be in multiple abstract states; a
/// `FlagSet` is the concrete representation of that valuation. Flag ids are
/// local to the owning class.
#[derive(
    Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct FlagSet(u64);

impl FlagSet {
    /// The empty valuation (all flags false).
    pub const EMPTY: FlagSet = FlagSet(0);

    /// Creates an empty flag set.
    pub fn new() -> Self {
        FlagSet(0)
    }

    /// Creates a flag set from a raw bit pattern.
    pub const fn from_bits(bits: u64) -> Self {
        FlagSet(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Returns whether `flag` is set.
    ///
    /// # Panics
    ///
    /// Panics if `flag.index() >= MAX_FLAGS`.
    pub fn contains(self, flag: FlagId) -> bool {
        assert!(flag.index() < MAX_FLAGS, "flag index out of range");
        self.0 & (1 << flag.index()) != 0
    }

    /// Returns a copy with `flag` set to `value`.
    pub fn with(self, flag: FlagId, value: bool) -> Self {
        assert!(flag.index() < MAX_FLAGS, "flag index out of range");
        let bit = 1u64 << flag.index();
        if value {
            FlagSet(self.0 | bit)
        } else {
            FlagSet(self.0 & !bit)
        }
    }

    /// Sets `flag` to `value` in place.
    pub fn set(&mut self, flag: FlagId, value: bool) {
        *self = self.with(flag, value);
    }

    /// Returns the restriction of this set to the bits in `mask`.
    pub fn masked(self, mask: FlagSet) -> Self {
        FlagSet(self.0 & mask.0)
    }

    /// Returns the union of two sets.
    pub fn union(self, other: FlagSet) -> Self {
        FlagSet(self.0 | other.0)
    }

    /// Returns whether no flag is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the number of set flags.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the set flags in increasing id order.
    pub fn iter(self) -> impl Iterator<Item = FlagId> {
        (0..MAX_FLAGS as u32)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(FlagId)
    }
}

impl fmt::Debug for FlagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlagSet{{")?;
        for (i, flag) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", flag.index())?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<FlagId> for FlagSet {
    fn from_iter<I: IntoIterator<Item = FlagId>>(iter: I) -> Self {
        let mut set = FlagSet::new();
        for flag in iter {
            set.set(flag, true);
        }
        set
    }
}

impl Extend<FlagId> for FlagSet {
    fn extend<I: IntoIterator<Item = FlagId>>(&mut self, iter: I) {
        for flag in iter {
            self.set(flag, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test_bits() {
        let mut s = FlagSet::new();
        assert!(s.is_empty());
        s.set(FlagId::new(3), true);
        s.set(FlagId::new(0), true);
        assert!(s.contains(FlagId::new(3)));
        assert!(s.contains(FlagId::new(0)));
        assert!(!s.contains(FlagId::new(1)));
        assert_eq!(s.len(), 2);
        s.set(FlagId::new(3), false);
        assert!(!s.contains(FlagId::new(3)));
    }

    #[test]
    fn iter_yields_sorted_flags() {
        let s: FlagSet = [FlagId::new(5), FlagId::new(1), FlagId::new(9)]
            .into_iter()
            .collect();
        let got: Vec<usize> = s.iter().map(FlagId::index).collect();
        assert_eq!(got, vec![1, 5, 9]);
    }

    #[test]
    fn masked_restricts_to_mask() {
        let s = FlagSet::from_bits(0b1011);
        let m = FlagSet::from_bits(0b0110);
        assert_eq!(s.masked(m).bits(), 0b0010);
    }

    #[test]
    fn union_merges() {
        let a = FlagSet::from_bits(0b01);
        let b = FlagSet::from_bits(0b10);
        assert_eq!(a.union(b).bits(), 0b11);
    }

    #[test]
    #[should_panic(expected = "flag index out of range")]
    fn out_of_range_flag_panics() {
        FlagSet::new().contains(FlagId::new(64));
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", FlagSet::EMPTY), "FlagSet{}");
    }
}
