//! Parameter guards: boolean expressions over a class's flags.

use crate::ids::FlagId;
use crate::spec::flagset::FlagSet;
use std::fmt;

/// A boolean expression over the flags of one class, used as a task
/// parameter guard (`flagexp` in the paper's Figure 5 grammar).
///
/// An object can serve as the task's parameter only when its current
/// [`FlagSet`] satisfies the guard.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FlagExpr {
    /// A single flag is set.
    Flag(FlagId),
    /// Constant truth value.
    Const(bool),
    /// Logical negation.
    Not(Box<FlagExpr>),
    /// Logical conjunction.
    And(Box<FlagExpr>, Box<FlagExpr>),
    /// Logical disjunction.
    Or(Box<FlagExpr>, Box<FlagExpr>),
}

impl FlagExpr {
    /// Convenience constructor: the guard `flag`.
    pub fn flag(flag: impl Into<FlagId>) -> Self {
        FlagExpr::Flag(flag.into())
    }

    /// Convenience constructor: `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        FlagExpr::Not(Box::new(self))
    }

    /// Convenience constructor: `self and other`.
    pub fn and(self, other: FlagExpr) -> Self {
        FlagExpr::And(Box::new(self), Box::new(other))
    }

    /// Convenience constructor: `self or other`.
    pub fn or(self, other: FlagExpr) -> Self {
        FlagExpr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates the guard against a concrete flag valuation.
    pub fn eval(&self, flags: FlagSet) -> bool {
        match self {
            FlagExpr::Flag(f) => flags.contains(*f),
            FlagExpr::Const(b) => *b,
            FlagExpr::Not(e) => !e.eval(flags),
            FlagExpr::And(a, b) => a.eval(flags) && b.eval(flags),
            FlagExpr::Or(a, b) => a.eval(flags) || b.eval(flags),
        }
    }

    /// Returns the set of flags mentioned anywhere in the expression.
    pub fn mentioned_flags(&self) -> FlagSet {
        match self {
            FlagExpr::Flag(f) => FlagSet::new().with(*f, true),
            FlagExpr::Const(_) => FlagSet::new(),
            FlagExpr::Not(e) => e.mentioned_flags(),
            FlagExpr::And(a, b) | FlagExpr::Or(a, b) => {
                a.mentioned_flags().union(b.mentioned_flags())
            }
        }
    }
}

impl fmt::Display for FlagExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlagExpr::Flag(id) => write!(f, "{id}"),
            FlagExpr::Const(b) => write!(f, "{b}"),
            FlagExpr::Not(e) => write!(f, "!({e})"),
            FlagExpr::And(a, b) => write!(f, "({a} and {b})"),
            FlagExpr::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: usize) -> FlagId {
        FlagId::new(i)
    }

    #[test]
    fn eval_basic_operators() {
        let flags = FlagSet::new().with(f(0), true);
        assert!(FlagExpr::flag(f(0)).eval(flags));
        assert!(!FlagExpr::flag(f(1)).eval(flags));
        assert!(FlagExpr::flag(f(1)).not().eval(flags));
        assert!(FlagExpr::flag(f(0))
            .and(FlagExpr::flag(f(1)).not())
            .eval(flags));
        assert!(FlagExpr::flag(f(1)).or(FlagExpr::flag(f(0))).eval(flags));
        assert!(FlagExpr::Const(true).eval(FlagSet::EMPTY));
        assert!(!FlagExpr::Const(false).eval(flags));
    }

    #[test]
    fn mentioned_flags_collects_all() {
        let e = FlagExpr::flag(f(2)).and(FlagExpr::flag(f(5)).or(FlagExpr::flag(f(2)).not()));
        let got: Vec<usize> = e.mentioned_flags().iter().map(FlagId::index).collect();
        assert_eq!(got, vec![2, 5]);
    }

    #[test]
    fn display_round_trips_structure() {
        let e = FlagExpr::flag(f(0)).and(FlagExpr::flag(f(1)).not());
        assert_eq!(e.to_string(), "(flag#0 and !(flag#1))");
    }
}
