//! Newtype indices identifying program entities.
//!
//! Every entity in a [`crate::spec::ProgramSpec`] — classes, flags, tag
//! types, tasks, parameters, exits, allocation sites — is referred to by a
//! small integer index wrapped in a dedicated newtype, so that indices of
//! different kinds cannot be confused (C-NEWTYPE).

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $short:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the raw index, suitable for indexing a `Vec`.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self::new(index)
            }
        }
    };
}

define_id!(
    /// Identifies a class declaration within a program.
    ClassId, "class#"
);
define_id!(
    /// Identifies a flag (abstract state bit) within its owning class.
    FlagId, "flag#"
);
define_id!(
    /// Identifies a tag type declared at program scope.
    TagTypeId, "tagty#"
);
define_id!(
    /// Identifies a task declaration within a program.
    TaskId, "task#"
);
define_id!(
    /// Identifies a method within its owning class.
    MethodId, "method#"
);
define_id!(
    /// Identifies a field within its owning class.
    FieldId, "field#"
);
define_id!(
    /// Identifies one of a task's declared exit points.
    ExitId, "exit#"
);
define_id!(
    /// Identifies an object-allocation site within a task (or method called
    /// from it).
    AllocSiteId, "alloc#"
);
define_id!(
    /// Identifies a tag variable bound within a task's scope (either by a
    /// `with` clause or a `new tag` statement).
    TagVarId, "tagvar#"
);

/// Zero-based position of a parameter in a task's parameter list.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ParamIdx(pub u32);

impl ParamIdx {
    /// Creates a parameter index.
    pub const fn new(index: usize) -> Self {
        Self(index as u32)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ParamIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "param#{}", self.0)
    }
}

impl fmt::Display for ParamIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "param#{}", self.0)
    }
}

impl From<usize> for ParamIdx {
    fn from(index: usize) -> Self {
        Self::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_index() {
        let c = ClassId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(ClassId::from(7usize), c);
    }

    #[test]
    fn debug_formats_are_distinct() {
        assert_eq!(format!("{:?}", ClassId::new(1)), "class#1");
        assert_eq!(format!("{:?}", TaskId::new(2)), "task#2");
        assert_eq!(format!("{:?}", ParamIdx::new(0)), "param#0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(FlagId::new(1) < FlagId::new(2));
    }
}
