//! Name resolution, type checking, and IR lowering.
//!
//! Turns a parsed [`Unit`](crate::ast::Unit) into a
//! [`crate::CompiledProgram`]: a
//! [`ProgramSpec`] (classes, flags, tag types, tasks with guards, exits,
//! and allocation sites) plus typed IR bodies for every task and method.
//!
//! ## Subset rules enforced here
//!
//! - Tasks and methods may only access their parameters and objects
//!   reachable from them; there are no global variables (the grammar has no
//!   way to name one, so this holds by construction).
//! - `taskexit` may appear only in task bodies; `return` only in methods.
//! - Objects of *task-parameter classes* (classes that appear as some
//!   task's parameter) may be allocated only inside task bodies, where the
//!   allocation is registered as a dispatch site. Other classes are plain
//!   data and may be allocated anywhere.
//! - The program must declare a `StartupObject` class with an
//!   `initialstate` flag.

use crate::ast::{self, BinOp, Block, Expr, FlagExprAst, FlagOrTagActionAst, Stmt, TypeExpr, UnOp};
use crate::ids::{AllocSiteId, ClassId, ExitId, ParamIdx, TagTypeId, TagVarId};
use crate::ir::{Builtin, IrBody, IrClass, IrExpr, IrField, IrMethod, IrPlace, IrProgram, IrStmt};
use crate::span::{CompileError, Diagnostic, Span};
use crate::spec::{
    AllocSiteSpec, ClassSpec, ExitSpec, FlagExpr, FlagOrTagAction, ParamSpec, ProgramSpec,
    StartupSpec, TagConstraint, TagTypeSpec, TagVarSpec, TaskSpec,
};
use crate::types::Type;
use crate::CompiledProgram;
use std::collections::{HashMap, HashSet};

/// Resolves and type-checks a parsed unit.
///
/// # Errors
///
/// Returns every semantic diagnostic found (unknown names, type
/// mismatches, misplaced statements, missing startup class, ...).
pub fn resolve(name: &str, unit: &ast::Unit) -> Result<CompiledProgram, CompileError> {
    let mut r = Resolver::new(unit);
    r.collect_declarations();
    r.lower_methods();
    r.lower_tasks();
    r.finish(name)
}

/// Signature of a method as seen by callers.
#[derive(Clone, Debug)]
struct MethodSig {
    params: Vec<Type>,
    ret: Type,
}

struct ClassTable {
    /// field name -> (index, type)
    fields: HashMap<String, (u32, Type)>,
    /// method name -> (index, signature); the constructor is stored under
    /// the class name.
    methods: HashMap<String, (u32, MethodSig)>,
}

struct Resolver<'a> {
    unit: &'a ast::Unit,
    diags: Vec<Diagnostic>,
    class_ids: HashMap<String, ClassId>,
    tag_type_ids: HashMap<String, TagTypeId>,
    classes: Vec<ClassSpec>,
    tables: Vec<ClassTable>,
    ir_classes: Vec<IrClass>,
    /// Classes that appear as a task parameter (dispatchable classes).
    param_classes: HashSet<ClassId>,
    tasks: Vec<TaskSpec>,
    task_bodies: Vec<IrBody>,
}

impl<'a> Resolver<'a> {
    fn new(unit: &'a ast::Unit) -> Self {
        Resolver {
            unit,
            diags: Vec::new(),
            class_ids: HashMap::new(),
            tag_type_ids: HashMap::new(),
            classes: Vec::new(),
            tables: Vec::new(),
            ir_classes: Vec::new(),
            param_classes: HashSet::new(),
            tasks: Vec::new(),
            task_bodies: Vec::new(),
        }
    }

    fn err(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.push(Diagnostic::new(span, msg));
    }

    // ---- phase A: declaration collection -------------------------------

    fn collect_declarations(&mut self) {
        for (i, class) in self.unit.classes.iter().enumerate() {
            let id = ClassId::new(i);
            if self.class_ids.insert(class.name.clone(), id).is_some() {
                self.err(class.span, format!("duplicate class `{}`", class.name));
            }
            let mut flags = Vec::new();
            for (flag, span) in &class.flags {
                if flags.contains(flag) {
                    self.err(*span, format!("duplicate flag `{flag}`"));
                } else {
                    flags.push(flag.clone());
                }
            }
            self.classes.push(ClassSpec {
                name: class.name.clone(),
                flags,
            });
        }
        for (i, tt) in self.unit.tag_types.iter().enumerate() {
            if self
                .tag_type_ids
                .insert(tt.name.clone(), TagTypeId::new(i))
                .is_some()
            {
                self.err(tt.span, format!("duplicate tag type `{}`", tt.name));
            }
        }
        // Field and method tables (types can now be resolved).
        for class in &self.unit.classes {
            let mut table = ClassTable {
                fields: HashMap::new(),
                methods: HashMap::new(),
            };
            let mut ir = IrClass::default();
            for field in &class.fields {
                let ty = self.resolve_type(&field.ty, field.span);
                if table
                    .fields
                    .insert(field.name.clone(), (ir.fields.len() as u32, ty.clone()))
                    .is_some()
                {
                    self.err(field.span, format!("duplicate field `{}`", field.name));
                }
                ir.fields.push(IrField {
                    name: field.name.clone(),
                    ty,
                });
            }
            for method in &class.methods {
                let params: Vec<Type> = method
                    .params
                    .iter()
                    .map(|(t, _)| self.resolve_type(t, method.span))
                    .collect();
                let ret = if method.is_ctor {
                    Type::Void
                } else {
                    self.resolve_type(&method.ret, method.span)
                };
                let idx = ir.methods.len() as u32;
                if table
                    .methods
                    .insert(
                        method.name.clone(),
                        (
                            idx,
                            MethodSig {
                                params,
                                ret: ret.clone(),
                            },
                        ),
                    )
                    .is_some()
                {
                    self.err(method.span, format!("duplicate method `{}`", method.name));
                }
                if method.is_ctor {
                    ir.ctor = Some(idx as usize);
                }
                // Body lowered in phase B; placeholder for now.
                ir.methods.push(IrMethod {
                    name: method.name.clone(),
                    n_params: method.params.len(),
                    ret,
                    body: IrBody::default(),
                });
            }
            self.tables.push(table);
            self.ir_classes.push(ir);
        }
        // Dispatchable classes.
        for task in &self.unit.tasks {
            for param in &task.params {
                if let Some(&id) = self.class_ids.get(&param.class) {
                    self.param_classes.insert(id);
                }
            }
        }
    }

    fn resolve_type(&mut self, ty: &TypeExpr, span: Span) -> Type {
        match ty {
            TypeExpr::Int => Type::Int,
            TypeExpr::Float => Type::Float,
            TypeExpr::Bool => Type::Bool,
            TypeExpr::Str => Type::Str,
            TypeExpr::Void => Type::Void,
            TypeExpr::Named(name) => match self.class_ids.get(name) {
                Some(&id) => Type::Class(id),
                None => {
                    self.err(span, format!("unknown class `{name}`"));
                    Type::Null
                }
            },
            TypeExpr::Array(elem) => Type::Array(Box::new(self.resolve_type(elem, span))),
        }
    }

    // ---- phase B: method bodies ----------------------------------------

    fn lower_methods(&mut self) {
        for (ci, class) in self.unit.classes.iter().enumerate() {
            let class_id = ClassId::new(ci);
            for (mi, method) in class.methods.iter().enumerate() {
                let ret = self.ir_classes[ci].methods[mi].ret.clone();
                let mut cx = BodyCx::for_method(self, class_id, method, ret);
                let stmts = cx.lower_block(&method.body);
                let n_slots = cx.slot_types.len();
                let diags = std::mem::take(&mut cx.diags);
                self.diags.extend(diags);
                let body = &mut self.ir_classes[ci].methods[mi].body;
                body.stmts = stmts;
                body.n_slots = n_slots;
            }
        }
    }

    // ---- phase C: tasks -------------------------------------------------

    fn lower_tasks(&mut self) {
        let mut task_names = HashSet::new();
        for task in &self.unit.tasks {
            if !task_names.insert(task.name.clone()) {
                self.err(task.span, format!("duplicate task `{}`", task.name));
            }
            let (spec, body) = self.lower_task(task);
            self.tasks.push(spec);
            self.task_bodies.push(body);
        }
    }

    fn lower_task(&mut self, task: &ast::TaskDecl) -> (TaskSpec, IrBody) {
        let mut params = Vec::new();
        let mut tag_vars: Vec<TagVarSpec> = Vec::new();
        let mut tag_scope: HashMap<String, TagVarId> = HashMap::new();
        let mut seen_names = HashSet::new();
        for p in &task.params {
            if !seen_names.insert(p.name.clone()) {
                self.err(p.span, format!("duplicate parameter `{}`", p.name));
            }
            let class = match self.class_ids.get(&p.class) {
                Some(&id) => id,
                None => {
                    self.err(p.span, format!("unknown class `{}`", p.class));
                    ClassId::new(0)
                }
            };
            let guard = self.resolve_guard(&p.guard, class);
            let mut tags = Vec::new();
            for (tt_name, var_name) in &p.tags {
                let tag_type = match self.tag_type_ids.get(tt_name) {
                    Some(&id) => id,
                    None => {
                        self.err(p.span, format!("unknown tag type `{tt_name}`"));
                        continue;
                    }
                };
                let var = *tag_scope.entry(var_name.clone()).or_insert_with(|| {
                    let id = TagVarId::new(tag_vars.len());
                    tag_vars.push(TagVarSpec {
                        name: var_name.clone(),
                        tag_type,
                        from_param: true,
                    });
                    id
                });
                if tag_vars[var.index()].tag_type != tag_type {
                    self.err(
                        p.span,
                        format!("tag variable `{var_name}` bound with two different tag types"),
                    );
                }
                tags.push(TagConstraint { tag_type, var });
            }
            params.push(ParamSpec {
                name: p.name.clone(),
                class,
                guard,
                tags,
            });
        }

        let mut collect = TaskCollect {
            name: task.name.clone(),
            params,
            exits: Vec::new(),
            alloc_sites: Vec::new(),
            tag_vars,
            tag_scope,
        };
        let mut cx = BodyCx::for_task(self, &mut collect, task);
        let mut stmts = cx.lower_block(&task.body);
        let terminated = block_terminates(&stmts);
        let n_slots = cx.slot_types.len();
        let diags = std::mem::take(&mut cx.diags);
        self.diags.extend(diags);
        if !terminated {
            // Control can fall off the end: give the task an implicit
            // actionless exit so the runtime always observes a taskexit.
            let exit = ExitId::new(collect.exits.len());
            collect.exits.push(ExitSpec {
                label: "_implicit".to_string(),
                actions: Vec::new(),
            });
            stmts.push(IrStmt::TaskExit(exit));
        }
        let spec = TaskSpec {
            name: collect.name,
            params: collect.params,
            exits: collect.exits,
            alloc_sites: collect.alloc_sites,
            tag_vars: collect.tag_vars,
        };
        let body = IrBody {
            n_slots,
            n_tag_slots: spec.tag_vars.len(),
            stmts,
        };
        (spec, body)
    }

    fn resolve_guard(&mut self, guard: &FlagExprAst, class: ClassId) -> FlagExpr {
        match guard {
            FlagExprAst::Flag(name, span) => {
                match self
                    .classes
                    .get(class.index())
                    .and_then(|c| c.flag_by_name(name))
                {
                    Some(flag) => FlagExpr::Flag(flag),
                    None => {
                        let class_name = self
                            .classes
                            .get(class.index())
                            .map(|c| c.name.clone())
                            .unwrap_or_default();
                        self.err(*span, format!("class `{class_name}` has no flag `{name}`"));
                        FlagExpr::Const(false)
                    }
                }
            }
            FlagExprAst::Const(b, _) => FlagExpr::Const(*b),
            FlagExprAst::Not(inner) => self.resolve_guard(inner, class).not(),
            FlagExprAst::And(a, b) => self
                .resolve_guard(a, class)
                .and(self.resolve_guard(b, class)),
            FlagExprAst::Or(a, b) => self
                .resolve_guard(a, class)
                .or(self.resolve_guard(b, class)),
        }
    }

    // ---- finish ----------------------------------------------------------

    fn finish(mut self, name: &str) -> Result<CompiledProgram, CompileError> {
        let startup = match self.class_ids.get("StartupObject") {
            Some(&class) => match self.classes[class.index()].flag_by_name("initialstate") {
                Some(flag) => StartupSpec { class, flag },
                None => {
                    self.err(
                        Span::DUMMY,
                        "class `StartupObject` must declare flag `initialstate`",
                    );
                    StartupSpec {
                        class,
                        flag: crate::ids::FlagId::new(0),
                    }
                }
            },
            None => {
                self.err(Span::DUMMY, "program must declare class `StartupObject`");
                StartupSpec {
                    class: ClassId::new(0),
                    flag: crate::ids::FlagId::new(0),
                }
            }
        };
        if !self.diags.is_empty() {
            return Err(CompileError::from_list(self.diags));
        }
        let spec = ProgramSpec {
            name: name.to_string(),
            classes: self.classes,
            tag_types: self
                .unit
                .tag_types
                .iter()
                .map(|t| TagTypeSpec {
                    name: t.name.clone(),
                })
                .collect(),
            tasks: self.tasks,
            startup,
        };
        let problems = spec.validate();
        if !problems.is_empty() {
            return Err(CompileError::from_list(
                problems
                    .into_iter()
                    .map(|p| Diagnostic::new(Span::DUMMY, p))
                    .collect(),
            ));
        }
        let ir = IrProgram {
            classes: self.ir_classes,
            tasks: self.task_bodies,
        };
        Ok(CompiledProgram { spec, ir })
    }
}

/// Mutable task-spec state threaded through body lowering.
struct TaskCollect {
    name: String,
    params: Vec<ParamSpec>,
    exits: Vec<ExitSpec>,
    alloc_sites: Vec<AllocSiteSpec>,
    tag_vars: Vec<TagVarSpec>,
    tag_scope: HashMap<String, TagVarId>,
}

/// Context for lowering one body (task or method).
struct BodyCx<'r, 'a> {
    res: &'r mut Resolver<'a>,
    diags: Vec<Diagnostic>,
    scopes: Vec<HashMap<String, u32>>,
    slot_types: Vec<Type>,
    /// `Some` when lowering a task body.
    task: Option<&'r mut TaskCollect>,
    /// `Some(class)` when lowering a method of `class`.
    current_class: Option<ClassId>,
    ret: Type,
    loop_depth: usize,
}

impl<'r, 'a> BodyCx<'r, 'a> {
    fn for_method(
        res: &'r mut Resolver<'a>,
        class: ClassId,
        method: &ast::MethodDecl,
        ret: Type,
    ) -> Self {
        let mut cx = BodyCx {
            res,
            diags: Vec::new(),
            scopes: vec![HashMap::new()],
            slot_types: Vec::new(),
            task: None,
            current_class: Some(class),
            ret,
            loop_depth: 0,
        };
        // Slot 0 is `this`.
        cx.slot_types.push(Type::Class(class));
        for (ty, name) in &method.params {
            let ty = cx.res.resolve_type(ty, method.span);
            cx.declare(name.clone(), ty, method.span);
        }
        cx
    }

    fn for_task(
        res: &'r mut Resolver<'a>,
        collect: &'r mut TaskCollect,
        task: &ast::TaskDecl,
    ) -> Self {
        let param_info: Vec<(String, ClassId)> = collect
            .params
            .iter()
            .map(|p| (p.name.clone(), p.class))
            .collect();
        let mut cx = BodyCx {
            res,
            diags: Vec::new(),
            scopes: vec![HashMap::new()],
            slot_types: Vec::new(),
            task: Some(collect),
            current_class: None,
            ret: Type::Void,
            loop_depth: 0,
        };
        for (name, class) in param_info {
            cx.declare(name, Type::Class(class), task.span);
        }
        cx
    }

    fn err(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.push(Diagnostic::new(span, msg));
    }

    fn declare(&mut self, name: String, ty: Type, span: Span) -> u32 {
        let slot = self.slot_types.len() as u32;
        self.slot_types.push(ty);
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.clone(), slot).is_some() {
            self.err(
                span,
                format!("variable `{name}` already declared in this scope"),
            );
        }
        slot
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    // ---- statements ----------------------------------------------------

    fn lower_block(&mut self, block: &Block) -> Vec<IrStmt> {
        self.scopes.push(HashMap::new());
        let stmts = block
            .stmts
            .iter()
            .filter_map(|s| self.lower_stmt(s))
            .collect();
        self.scopes.pop();
        stmts
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Option<IrStmt> {
        match stmt {
            Stmt::Local {
                ty,
                name,
                init,
                span,
            } => {
                let ty = self.res.resolve_type(ty, *span);
                let init_ir = match init {
                    Some(expr) => {
                        let (ir, ity) = self.lower_expr(expr)?;
                        if !ity.assignable_to(&ty) {
                            self.err(
                                *span,
                                format!("cannot initialize `{name}: {ty}` from `{ity}`"),
                            );
                        }
                        Some(ir)
                    }
                    None => None,
                };
                let slot = self.declare(name.clone(), ty.clone(), *span);
                Some(IrStmt::Assign {
                    target: IrPlace::Local(slot),
                    value: init_ir.unwrap_or_else(|| default_value(&ty)),
                })
            }
            Stmt::Assign { lhs, rhs, span } => {
                let (value, vty) = self.lower_expr(rhs)?;
                let (place, pty) = self.lower_place(lhs)?;
                if !vty.assignable_to(&pty) {
                    self.err(
                        *span,
                        format!("cannot assign `{vty}` to location of type `{pty}`"),
                    );
                }
                Some(IrStmt::Assign {
                    target: place,
                    value,
                })
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                let cond = self.lower_bool(cond, *span);
                let then_blk = self.lower_block(then_blk);
                let else_blk = else_blk
                    .as_ref()
                    .map(|b| self.lower_block(b))
                    .unwrap_or_default();
                Some(IrStmt::If {
                    cond: cond?,
                    then_blk,
                    else_blk,
                })
            }
            Stmt::While { cond, body, span } => {
                let cond = self.lower_bool(cond, *span);
                self.loop_depth += 1;
                let body = self.lower_block(body);
                self.loop_depth -= 1;
                Some(IrStmt::While { cond: cond?, body })
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                self.scopes.push(HashMap::new());
                let init = init
                    .as_ref()
                    .and_then(|s| self.lower_stmt(s))
                    .into_iter()
                    .collect();
                let cond = match cond {
                    Some(c) => Some(self.lower_bool(c, *span)?),
                    None => None,
                };
                let step = step
                    .as_ref()
                    .and_then(|s| self.lower_stmt(s))
                    .into_iter()
                    .collect();
                self.loop_depth += 1;
                let body = self.lower_block(body);
                self.loop_depth -= 1;
                self.scopes.pop();
                Some(IrStmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Stmt::Return { value, span } => {
                if self.task.is_some() {
                    self.err(
                        *span,
                        "`return` is not allowed in a task body; use `taskexit`",
                    );
                    return None;
                }
                match (value, self.ret.clone()) {
                    (None, Type::Void) => Some(IrStmt::Return(None)),
                    (None, ret) => {
                        self.err(*span, format!("method must return `{ret}`"));
                        None
                    }
                    (Some(_), Type::Void) => {
                        self.err(*span, "void method cannot return a value");
                        None
                    }
                    (Some(expr), ret) => {
                        let (ir, ty) = self.lower_expr(expr)?;
                        if !ty.assignable_to(&ret) {
                            self.err(
                                *span,
                                format!("cannot return `{ty}` from method returning `{ret}`"),
                            );
                        }
                        Some(IrStmt::Return(Some(ir)))
                    }
                }
            }
            Stmt::Break(span) => {
                if self.loop_depth == 0 {
                    self.err(*span, "`break` outside of a loop");
                }
                Some(IrStmt::Break)
            }
            Stmt::Continue(span) => {
                if self.loop_depth == 0 {
                    self.err(*span, "`continue` outside of a loop");
                }
                Some(IrStmt::Continue)
            }
            Stmt::TaskExit { actions, span } => self.lower_taskexit(actions, *span),
            Stmt::NewTag {
                var,
                tag_type,
                span,
            } => {
                let tag_type_id = match self.res.tag_type_ids.get(tag_type) {
                    Some(&id) => id,
                    None => {
                        self.err(*span, format!("unknown tag type `{tag_type}`"));
                        return None;
                    }
                };
                let task = match self.task.as_mut() {
                    Some(t) => t,
                    None => {
                        self.err(*span, "`new tag` is only allowed in task bodies");
                        return None;
                    }
                };
                if task.tag_scope.contains_key(var) {
                    let var = var.clone();
                    self.err(*span, format!("tag variable `{var}` already declared"));
                    return None;
                }
                let id = TagVarId::new(task.tag_vars.len());
                task.tag_vars.push(TagVarSpec {
                    name: var.clone(),
                    tag_type: tag_type_id,
                    from_param: false,
                });
                task.tag_scope.insert(var.clone(), id);
                Some(IrStmt::NewTag {
                    var: id,
                    tag_type: tag_type_id,
                })
            }
            Stmt::Expr(expr) => {
                let (ir, _) = self.lower_expr(expr)?;
                Some(IrStmt::Expr(ir))
            }
            Stmt::Block(block) => {
                let stmts = self.lower_block(block);
                // Represent a bare block as an `if (true)` for simplicity.
                Some(IrStmt::If {
                    cond: IrExpr::ConstBool(true),
                    then_blk: stmts,
                    else_blk: vec![],
                })
            }
        }
    }

    fn lower_taskexit(
        &mut self,
        actions: &[(String, Vec<FlagOrTagActionAst>)],
        span: Span,
    ) -> Option<IrStmt> {
        if self.task.is_none() {
            self.err(span, "`taskexit` is only allowed in task bodies");
            return None;
        }
        let mut spec_actions: Vec<(ParamIdx, Vec<FlagOrTagAction>)> = Vec::new();
        for (param_name, list) in actions {
            let Some(task) = self.task.as_ref() else {
                unreachable!()
            };
            let Some(pos) = task.params.iter().position(|p| &p.name == param_name) else {
                self.err(
                    span,
                    format!("`taskexit` names unknown parameter `{param_name}`"),
                );
                continue;
            };
            let class = task.params[pos].class;
            let mut resolved = Vec::new();
            for action in list {
                match action {
                    FlagOrTagActionAst::SetFlag(flag, value, aspan) => {
                        let class_spec = &self.res.classes[class.index()];
                        match class_spec.flag_by_name(flag) {
                            Some(id) => resolved.push(FlagOrTagAction::SetFlag(id, *value)),
                            None => {
                                let msg =
                                    format!("class `{}` has no flag `{flag}`", class_spec.name);
                                self.err(*aspan, msg);
                            }
                        }
                    }
                    FlagOrTagActionAst::AddTag(var, aspan)
                    | FlagOrTagActionAst::ClearTag(var, aspan) => {
                        let task = self.task.as_ref().expect("checked above");
                        match task.tag_scope.get(var) {
                            Some(&id) => resolved.push(match action {
                                FlagOrTagActionAst::AddTag(..) => FlagOrTagAction::AddTag(id),
                                _ => FlagOrTagAction::ClearTag(id),
                            }),
                            None => {
                                let msg = format!("unknown tag variable `{var}`");
                                self.err(*aspan, msg);
                            }
                        }
                    }
                }
            }
            spec_actions.push((ParamIdx::new(pos), resolved));
        }
        let task = self.task.as_mut().expect("checked above");
        let exit = ExitId::new(task.exits.len());
        task.exits.push(ExitSpec {
            label: format!("exit{}", exit.index()),
            actions: spec_actions,
        });
        Some(IrStmt::TaskExit(exit))
    }

    // ---- places ----------------------------------------------------------

    fn lower_place(&mut self, expr: &Expr) -> Option<(IrPlace, Type)> {
        match expr {
            Expr::Var(name, span) => match self.lookup(name) {
                Some(slot) => Some((IrPlace::Local(slot), self.slot_types[slot as usize].clone())),
                None => {
                    self.err(*span, format!("unknown variable `{name}`"));
                    None
                }
            },
            Expr::Field { obj, name, span } => {
                let (obj_ir, obj_ty) = self.lower_expr(obj)?;
                let class = self.expect_class(&obj_ty, *span)?;
                let (idx, ty) = self.field_of(class, name, *span)?;
                Some((
                    IrPlace::Field {
                        obj: obj_ir,
                        field: idx,
                    },
                    ty,
                ))
            }
            Expr::Index { arr, idx, span } => {
                let (arr_ir, arr_ty) = self.lower_expr(arr)?;
                let (idx_ir, idx_ty) = self.lower_expr(idx)?;
                if idx_ty != Type::Int {
                    self.err(
                        *span,
                        format!("array index must be `int`, found `{idx_ty}`"),
                    );
                }
                match arr_ty {
                    Type::Array(elem) => Some((
                        IrPlace::Index {
                            arr: arr_ir,
                            idx: idx_ir,
                        },
                        *elem,
                    )),
                    other => {
                        self.err(*span, format!("cannot index non-array type `{other}`"));
                        None
                    }
                }
            }
            other => {
                self.err(other.span(), "expression is not assignable");
                None
            }
        }
    }

    fn expect_class(&mut self, ty: &Type, span: Span) -> Option<ClassId> {
        match ty {
            Type::Class(id) => Some(*id),
            other => {
                self.err(span, format!("expected an object, found `{other}`"));
                None
            }
        }
    }

    fn field_of(&mut self, class: ClassId, name: &str, span: Span) -> Option<(u32, Type)> {
        match self.res.tables[class.index()].fields.get(name) {
            Some((idx, ty)) => Some((*idx, ty.clone())),
            None => {
                let class_name = self.res.classes[class.index()].name.clone();
                self.err(span, format!("class `{class_name}` has no field `{name}`"));
                None
            }
        }
    }

    fn lower_bool(&mut self, expr: &Expr, span: Span) -> Option<IrExpr> {
        let (ir, ty) = self.lower_expr(expr)?;
        if ty != Type::Bool {
            self.err(span, format!("condition must be `boolean`, found `{ty}`"));
        }
        Some(ir)
    }

    // ---- expressions -----------------------------------------------------

    fn lower_expr(&mut self, expr: &Expr) -> Option<(IrExpr, Type)> {
        match expr {
            Expr::IntLit(v, _) => Some((IrExpr::ConstInt(*v), Type::Int)),
            Expr::FloatLit(v, _) => Some((IrExpr::ConstFloat(*v), Type::Float)),
            Expr::BoolLit(v, _) => Some((IrExpr::ConstBool(*v), Type::Bool)),
            Expr::StrLit(s, _) => Some((IrExpr::ConstStr(s.clone()), Type::Str)),
            Expr::Var(name, span) => {
                if name == "null" {
                    return Some((IrExpr::Null, Type::Null));
                }
                match self.lookup(name) {
                    Some(slot) => {
                        Some((IrExpr::Local(slot), self.slot_types[slot as usize].clone()))
                    }
                    None => {
                        self.err(*span, format!("unknown variable `{name}`"));
                        None
                    }
                }
            }
            Expr::This(span) => match self.current_class {
                Some(class) => Some((IrExpr::Local(0), Type::Class(class))),
                None => {
                    self.err(*span, "`this` is only available in methods");
                    None
                }
            },
            Expr::Field { obj, name, span } => {
                let (obj_ir, obj_ty) = self.lower_expr(obj)?;
                let class = self.expect_class(&obj_ty, *span)?;
                let (idx, ty) = self.field_of(class, name, *span)?;
                Some((
                    IrExpr::Field {
                        obj: Box::new(obj_ir),
                        field: idx,
                    },
                    ty,
                ))
            }
            Expr::Index { arr, idx, span } => {
                let (arr_ir, arr_ty) = self.lower_expr(arr)?;
                let (idx_ir, idx_ty) = self.lower_expr(idx)?;
                if idx_ty != Type::Int {
                    self.err(
                        *span,
                        format!("array index must be `int`, found `{idx_ty}`"),
                    );
                }
                match arr_ty {
                    Type::Array(elem) => Some((
                        IrExpr::Index {
                            arr: Box::new(arr_ir),
                            idx: Box::new(idx_ir),
                        },
                        *elem,
                    )),
                    other => {
                        self.err(*span, format!("cannot index non-array type `{other}`"));
                        None
                    }
                }
            }
            Expr::Call {
                recv: Some(recv),
                name,
                args,
                span,
            } => {
                let (obj_ir, obj_ty) = self.lower_expr(recv)?;
                let class = self.expect_class(&obj_ty, *span)?;
                let (idx, sig) = match self.res.tables[class.index()].methods.get(name) {
                    Some((idx, sig)) => (*idx, sig.clone()),
                    None => {
                        let class_name = self.res.classes[class.index()].name.clone();
                        self.err(
                            *span,
                            format!("class `{class_name}` has no method `{name}`"),
                        );
                        return None;
                    }
                };
                let args_ir = self.check_args(args, &sig.params, name, *span)?;
                Some((
                    IrExpr::CallMethod {
                        obj: Box::new(obj_ir),
                        class,
                        method: idx,
                        args: args_ir,
                    },
                    sig.ret,
                ))
            }
            Expr::Call {
                recv: None,
                name,
                args,
                span,
            } => {
                let Some(builtin) = Builtin::by_name(name) else {
                    self.err(
                        *span,
                        format!("unknown function `{name}` (methods need a receiver)"),
                    );
                    return None;
                };
                self.lower_builtin(builtin, args, *span)
            }
            Expr::New {
                class,
                args,
                state,
                span,
            } => self.lower_new(class, args, state, *span),
            Expr::NewArray { elem, len, span } => {
                let elem_ty = self.res.resolve_type(elem, *span);
                let (len_ir, len_ty) = self.lower_expr(len)?;
                if len_ty != Type::Int {
                    self.err(
                        *span,
                        format!("array length must be `int`, found `{len_ty}`"),
                    );
                }
                Some((
                    IrExpr::NewArray {
                        elem: elem_ty.clone(),
                        len: Box::new(len_ir),
                    },
                    Type::Array(Box::new(elem_ty)),
                ))
            }
            Expr::Unary { op, expr, span } => {
                let (ir, ty) = self.lower_expr(expr)?;
                let out = match (op, &ty) {
                    (UnOp::Neg, Type::Int) | (UnOp::Neg, Type::Float) => ty.clone(),
                    (UnOp::Not, Type::Bool) => Type::Bool,
                    _ => {
                        self.err(*span, format!("operator `{op:?}` is not defined on `{ty}`"));
                        return None;
                    }
                };
                Some((
                    IrExpr::Unary {
                        op: *op,
                        expr: Box::new(ir),
                    },
                    out,
                ))
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let (lir, lty) = self.lower_expr(lhs)?;
                let (rir, rty) = self.lower_expr(rhs)?;
                let out = self.binary_type(*op, &lty, &rty, *span)?;
                Some((
                    IrExpr::Binary {
                        op: *op,
                        lhs: Box::new(lir),
                        rhs: Box::new(rir),
                    },
                    out,
                ))
            }
        }
    }

    fn check_args(
        &mut self,
        args: &[Expr],
        params: &[Type],
        what: &str,
        span: Span,
    ) -> Option<Vec<IrExpr>> {
        if args.len() != params.len() {
            self.err(
                span,
                format!(
                    "`{what}` expects {} arguments, found {}",
                    params.len(),
                    args.len()
                ),
            );
            return None;
        }
        let mut out = Vec::with_capacity(args.len());
        for (arg, expected) in args.iter().zip(params) {
            let (ir, ty) = self.lower_expr(arg)?;
            if !ty.assignable_to(expected) {
                self.err(
                    arg.span(),
                    format!("argument type `{ty}` does not match parameter type `{expected}`"),
                );
            }
            out.push(ir);
        }
        Some(out)
    }

    fn binary_type(&mut self, op: BinOp, lty: &Type, rty: &Type, span: Span) -> Option<Type> {
        use BinOp::*;
        let ok = match op {
            Add => match (lty, rty) {
                (Type::Int, Type::Int) => Some(Type::Int),
                (Type::Float, Type::Float) => Some(Type::Float),
                (Type::Str, Type::Str) => Some(Type::Str),
                _ => None,
            },
            Sub | Mul | Div => match (lty, rty) {
                (Type::Int, Type::Int) => Some(Type::Int),
                (Type::Float, Type::Float) => Some(Type::Float),
                _ => None,
            },
            Rem => match (lty, rty) {
                (Type::Int, Type::Int) => Some(Type::Int),
                _ => None,
            },
            Eq | Ne => {
                if lty.assignable_to(rty) || rty.assignable_to(lty) {
                    Some(Type::Bool)
                } else {
                    None
                }
            }
            Lt | Le | Gt | Ge => match (lty, rty) {
                (Type::Int, Type::Int) | (Type::Float, Type::Float) => Some(Type::Bool),
                _ => None,
            },
            And | Or => match (lty, rty) {
                (Type::Bool, Type::Bool) => Some(Type::Bool),
                _ => None,
            },
        };
        match ok {
            Some(ty) => Some(ty),
            None => {
                self.err(
                    span,
                    format!("operator `{op:?}` is not defined on `{lty}` and `{rty}`"),
                );
                None
            }
        }
    }

    fn lower_builtin(
        &mut self,
        builtin: Builtin,
        args: &[Expr],
        span: Span,
    ) -> Option<(IrExpr, Type)> {
        if args.len() != builtin.arity() {
            self.err(
                span,
                format!(
                    "builtin `{builtin:?}` expects {} arguments",
                    builtin.arity()
                ),
            );
            return None;
        }
        let mut irs = Vec::with_capacity(args.len());
        let mut tys = Vec::with_capacity(args.len());
        for arg in args {
            let (ir, ty) = self.lower_expr(arg)?;
            irs.push(ir);
            tys.push(ty);
        }
        use Builtin::*;
        use Type::*;
        let ret = match builtin {
            Print | Println => match &tys[0] {
                Str => Void,
                other => return self.builtin_type_error(builtin, other, span),
            },
            Itoa => self.require(builtin, &tys, &[Int], Str, span)?,
            Ftoa => self.require(builtin, &tys, &[Float], Str, span)?,
            Itof => self.require(builtin, &tys, &[Int], Float, span)?,
            Ftoi => self.require(builtin, &tys, &[Float], Int, span)?,
            ParseInt => self.require(builtin, &tys, &[Str], Int, span)?,
            Len => match &tys[0] {
                Array(_) | Str => Int,
                other => return self.builtin_type_error(builtin, other, span),
            },
            Split => self.require(builtin, &tys, &[Str, Str], Array(Box::new(Str)), span)?,
            Substr => self.require(builtin, &tys, &[Str, Int, Int], Str, span)?,
            Sqrt | Sin | Cos | Exp | Log | Floor => {
                self.require(builtin, &tys, &[Float], Float, span)?
            }
            Pow => self.require(builtin, &tys, &[Float, Float], Float, span)?,
            Abs => match &tys[0] {
                Int => Int,
                Float => Float,
                other => return self.builtin_type_error(builtin, other, span),
            },
            Min | Max => match (&tys[0], &tys[1]) {
                (Int, Int) => Int,
                (Float, Float) => Float,
                (other, _) => return self.builtin_type_error(builtin, other, span),
            },
        };
        Some((IrExpr::CallBuiltin { builtin, args: irs }, ret))
    }

    fn require(
        &mut self,
        builtin: Builtin,
        actual: &[Type],
        expected: &[Type],
        ret: Type,
        span: Span,
    ) -> Option<Type> {
        for (a, e) in actual.iter().zip(expected) {
            if !a.assignable_to(e) {
                self.err(
                    span,
                    format!("builtin `{builtin:?}` expects `{e}` argument, found `{a}`"),
                );
                return None;
            }
        }
        Some(ret)
    }

    fn builtin_type_error(
        &mut self,
        builtin: Builtin,
        found: &Type,
        span: Span,
    ) -> Option<(IrExpr, Type)> {
        self.err(
            span,
            format!("builtin `{builtin:?}` is not defined on `{found}`"),
        );
        None
    }

    fn lower_new(
        &mut self,
        class_name: &str,
        args: &[Expr],
        state: &[FlagOrTagActionAst],
        span: Span,
    ) -> Option<(IrExpr, Type)> {
        let class = match self.res.class_ids.get(class_name) {
            Some(&id) => id,
            None => {
                self.err(span, format!("unknown class `{class_name}`"));
                return None;
            }
        };
        // Constructor arguments.
        let ctor_params: Vec<Type> = self.res.tables[class.index()]
            .methods
            .get(class_name)
            .map(|(_, sig)| sig.params.clone())
            .unwrap_or_default();
        let args_ir = self.check_args(args, &ctor_params, class_name, span)?;

        let dispatchable = self.res.param_classes.contains(&class);
        let site = if dispatchable {
            let Some(task) = self.task.as_mut() else {
                self.err(
                    span,
                    format!(
                        "objects of task-parameter class `{class_name}` may only be allocated in task bodies"
                    ),
                );
                return None;
            };
            // Resolve the initial-state actions against the allocated class.
            let mut initial_flags = Vec::new();
            let mut bound_tags = Vec::new();
            for action in state {
                match action {
                    FlagOrTagActionAst::SetFlag(flag, value, aspan) => {
                        match self.res.classes[class.index()].flag_by_name(flag) {
                            Some(id) => initial_flags.push((id, *value)),
                            None => {
                                let msg = format!("class `{class_name}` has no flag `{flag}`");
                                self.diags.push(Diagnostic::new(*aspan, msg));
                            }
                        }
                    }
                    FlagOrTagActionAst::AddTag(var, aspan) => match task.tag_scope.get(var) {
                        Some(&id) => bound_tags.push(id),
                        None => {
                            let msg = format!("unknown tag variable `{var}`");
                            self.diags.push(Diagnostic::new(*aspan, msg));
                        }
                    },
                    FlagOrTagActionAst::ClearTag(_, aspan) => {
                        self.diags.push(Diagnostic::new(
                            *aspan,
                            "`clear` makes no sense on a newly allocated object",
                        ));
                    }
                }
            }
            let site = AllocSiteId::new(task.alloc_sites.len());
            task.alloc_sites.push(AllocSiteSpec {
                class,
                initial_flags,
                bound_tags,
            });
            Some(site)
        } else {
            if !state.is_empty() {
                self.err(
                    span,
                    format!(
                        "class `{class_name}` is not a task parameter; its objects have no dispatched abstract state"
                    ),
                );
            }
            None
        };
        Some((
            IrExpr::New {
                class,
                args: args_ir,
                site,
            },
            Type::Class(class),
        ))
    }
}

/// Produces the IR default value for a type (what uninitialized locals and
/// fields hold).
fn default_value(ty: &Type) -> IrExpr {
    match ty {
        Type::Int => IrExpr::ConstInt(0),
        Type::Float => IrExpr::ConstFloat(0.0),
        Type::Bool => IrExpr::ConstBool(false),
        Type::Str => IrExpr::ConstStr(String::new()),
        _ => IrExpr::Null,
    }
}

/// Conservative check: does every control path through `stmts` end in
/// `taskexit` or `return`?
fn block_terminates(stmts: &[IrStmt]) -> bool {
    stmts.iter().any(stmt_terminates)
}

fn stmt_terminates(stmt: &IrStmt) -> bool {
    match stmt {
        IrStmt::TaskExit(_) | IrStmt::Return(_) => true,
        IrStmt::If {
            then_blk, else_blk, ..
        } => block_terminates(then_blk) && block_terminates(else_blk),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::compile_source;

    const KEYWORD_COUNT: &str = r#"
        class StartupObject { flag initialstate; }
        class Text {
            flag process;
            flag submit;
            int count;
            int sectionId;
            Text(int id) { this.sectionId = id; }
            void process() { this.count = this.sectionId * 3 + 1; }
        }
        class Results {
            flag finished;
            int total;
            int merged;
            int expected;
            Results(int expected) { this.expected = expected; }
            boolean mergeResult(Text tp) {
                this.total = this.total + tp.count;
                this.merged = this.merged + 1;
                return this.merged == this.expected;
            }
        }
        task startup(StartupObject s in initialstate) {
            for (int i = 0; i < 4; i = i + 1) {
                Text tp = new Text(i){ process := true };
            }
            Results rp = new Results(4){ finished := false };
            taskexit(s: initialstate := false);
        }
        task processText(Text tp in process) {
            tp.process();
            taskexit(tp: process := false, submit := true);
        }
        task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
            boolean allprocessed = rp.mergeResult(tp);
            if (allprocessed) {
                taskexit(rp: finished := true; tp: submit := false);
            }
            taskexit(tp: submit := false);
        }
    "#;

    #[test]
    fn compiles_keyword_counting_example() {
        let compiled = compile_source("kc", KEYWORD_COUNT).unwrap();
        assert_eq!(compiled.spec.classes.len(), 3);
        assert_eq!(compiled.spec.tasks.len(), 3);
        let startup = compiled.spec.task_by_name("startup").unwrap();
        let task = compiled.spec.task(startup);
        assert_eq!(task.alloc_sites.len(), 2);
        assert_eq!(task.exits.len(), 1);
        let merge = compiled
            .spec
            .task_by_name("mergeIntermediateResult")
            .unwrap();
        assert_eq!(compiled.spec.task(merge).exits.len(), 2);
    }

    #[test]
    fn startup_class_is_required() {
        let err = compile_source(
            "x",
            "class A { flag f; } task t(A a in f) { taskexit(a: f := false); }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("StartupObject"));
    }

    #[test]
    fn taskexit_outside_task_rejected() {
        let src = r#"
            class StartupObject { flag initialstate;
                void bad() { taskexit(); }
            }
            task t(StartupObject s in initialstate) { taskexit(s: initialstate := false); }
        "#;
        let err = compile_source("x", src).unwrap_err();
        assert!(err.to_string().contains("only allowed in task bodies"));
    }

    #[test]
    fn return_inside_task_rejected() {
        let src = r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in initialstate) { return; }
        "#;
        let err = compile_source("x", src).unwrap_err();
        assert!(err.to_string().contains("not allowed in a task body"));
    }

    #[test]
    fn type_mismatch_reported() {
        let src = r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in initialstate) {
                int x = 1.5;
                taskexit(s: initialstate := false);
            }
        "#;
        let err = compile_source("x", src).unwrap_err();
        assert!(err.to_string().contains("cannot initialize"));
    }

    #[test]
    fn unknown_flag_in_guard_reported() {
        let src = r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in bogus) { taskexit(s: initialstate := false); }
        "#;
        let err = compile_source("x", src).unwrap_err();
        assert!(err.to_string().contains("no flag `bogus`"));
    }

    #[test]
    fn dispatchable_alloc_in_method_rejected() {
        let src = r#"
            class StartupObject { flag initialstate; }
            class W { flag ready;
                void make() { W w = new W(); }
            }
            task t(StartupObject s in initialstate) { taskexit(s: initialstate := false); }
            task u(W w in ready) { taskexit(w: ready := false); }
        "#;
        let err = compile_source("x", src).unwrap_err();
        assert!(err
            .to_string()
            .contains("may only be allocated in task bodies"));
    }

    #[test]
    fn plain_data_alloc_in_method_allowed() {
        let src = r#"
            class StartupObject { flag initialstate; }
            class Node { int v; Node next; }
            class Holder { flag h;
                Node build() {
                    Node n = new Node();
                    n.next = new Node();
                    return n;
                }
            }
            task t(StartupObject s in initialstate) { taskexit(s: initialstate := false); }
            task u(Holder x in h) {
                Node n = x.build();
                taskexit(x: h := false);
            }
        "#;
        compile_source("x", src).unwrap();
    }

    #[test]
    fn implicit_exit_added_for_fallthrough() {
        let src = r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in initialstate) {
                if (1 < 2) { taskexit(s: initialstate := false); }
            }
        "#;
        let compiled = compile_source("x", src).unwrap();
        let task = &compiled.spec.tasks[0];
        assert_eq!(task.exits.len(), 2);
        assert_eq!(task.exits[1].label, "_implicit");
    }

    #[test]
    fn no_implicit_exit_when_both_branches_exit() {
        let src = r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in initialstate) {
                if (1 < 2) { taskexit(s: initialstate := false); }
                else { taskexit(s: initialstate := false); }
            }
        "#;
        let compiled = compile_source("x", src).unwrap();
        assert_eq!(compiled.spec.tasks[0].exits.len(), 2);
    }

    #[test]
    fn tags_resolve_across_params_and_news() {
        let src = r#"
            class StartupObject { flag initialstate; }
            class Drawing { flag saving; }
            class Image { flag uncompressed; flag compressed; }
            tagtype link;
            task startsave(StartupObject s in initialstate) {
                tag t = new tag(link);
                Drawing d = new Drawing(){ saving := true, add t };
                Image i = new Image(){ uncompressed := true, add t };
                taskexit(s: initialstate := false);
            }
            task finishsave(Drawing d in saving with link t, Image i in compressed with link t) {
                taskexit(d: saving := false, clear t; i: compressed := false, clear t);
            }
        "#;
        let compiled = compile_source("x", src).unwrap();
        let startsave = compiled
            .spec
            .task(compiled.spec.task_by_name("startsave").unwrap());
        assert_eq!(startsave.tag_vars.len(), 1);
        assert!(!startsave.tag_vars[0].from_param);
        assert_eq!(startsave.alloc_sites[0].bound_tags.len(), 1);
        let finishsave = compiled
            .spec
            .task(compiled.spec.task_by_name("finishsave").unwrap());
        assert!(finishsave.all_params_share_tag());
    }

    #[test]
    fn string_concat_typechecks() {
        let src = r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in initialstate) {
                String msg = "count: " + itoa(42);
                println(msg);
                taskexit(s: initialstate := false);
            }
        "#;
        compile_source("x", src).unwrap();
    }

    #[test]
    fn builtin_wrong_arg_type_reported() {
        let src = r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in initialstate) {
                float x = sqrt(4);
                taskexit(s: initialstate := false);
            }
        "#;
        let err = compile_source("x", src).unwrap_err();
        assert!(err.to_string().contains("expects `float`"));
    }

    #[test]
    fn duplicate_variable_in_scope_rejected() {
        let src = r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in initialstate) {
                int x = 1;
                int x = 2;
                taskexit(s: initialstate := false);
            }
        "#;
        let err = compile_source("x", src).unwrap_err();
        assert!(err.to_string().contains("already declared"));
    }

    #[test]
    fn shadowing_in_inner_scope_allowed() {
        let src = r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in initialstate) {
                int x = 1;
                if (x > 0) { int y = x + 1; }
                while (x > 0) { x = x - 1; }
                taskexit(s: initialstate := false);
            }
        "#;
        compile_source("x", src).unwrap();
    }
}
