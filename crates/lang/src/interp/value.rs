//! Runtime values for the DSL interpreter.

use std::fmt;
use std::rc::Rc;

/// A reference to a heap object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(pub u32);

impl ObjRef {
    /// Returns the raw heap index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// A dynamically-typed value.
///
/// The type checker guarantees operations only see compatible kinds, so the
/// interpreter traps (returns a runtime error) rather than checks.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// The null reference.
    Null,
    /// `int`.
    Int(i64),
    /// `float`.
    Float(f64),
    /// `boolean`.
    Bool(bool),
    /// `String` (immutable, cheaply cloneable).
    Str(Rc<str>),
    /// Reference to a heap object (class instance or array).
    Ref(ObjRef),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Returns the contained `int`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int`; the type checker rules this
    /// out for well-typed programs.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Returns the contained `float`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Float`.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            other => panic!("expected float, found {other:?}"),
        }
    }

    /// Returns the contained `boolean`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Bool`.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected boolean, found {other:?}"),
        }
    }

    /// Returns the contained reference, or `None` for `Null`.
    pub fn as_ref(&self) -> Option<ObjRef> {
        match self {
            Value::Ref(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Ref(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_unwrap_kinds() {
        assert_eq!(Value::Int(3).as_int(), 3);
        assert_eq!(Value::Float(1.5).as_float(), 1.5);
        assert!(Value::Bool(true).as_bool());
        assert_eq!(Value::Null.as_ref(), None);
        assert_eq!(Value::Ref(ObjRef(2)).as_ref(), Some(ObjRef(2)));
    }

    #[test]
    fn string_equality_is_by_content() {
        assert_eq!(Value::str("ab"), Value::str("ab"));
        assert_ne!(Value::str("ab"), Value::str("ba"));
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn wrong_kind_panics() {
        Value::Bool(true).as_int();
    }
}
