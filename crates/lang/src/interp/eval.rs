//! Tree-walking evaluator for IR bodies.
//!
//! The evaluator executes one task invocation at a time
//! ([`Interp::run_task`]): it evaluates the body, records allocation-site
//! objects and fresh tag instances, counts abstract cycles, and reports
//! which declared exit the task took. It never mutates dispatch state
//! (flags/tags) itself — the caller (reference driver or runtime) applies
//! the exit's declared actions.

use crate::ast::{BinOp, UnOp};
use crate::ids::{AllocSiteId, ClassId, ExitId, TagTypeId, TaskId};
use crate::interp::heap::{Heap, Slot};
use crate::interp::value::{ObjRef, Value};
use crate::ir::{Builtin, IrBody, IrExpr, IrPlace, IrStmt};
use crate::types::Type;
use crate::CompiledProgram;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// A runtime trap: null dereference, out-of-bounds index, division by
/// zero, or exceeded step budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrapError {
    /// What went wrong.
    pub message: String,
}

impl TrapError {
    fn new(message: impl Into<String>) -> Self {
        TrapError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime trap: {}", self.message)
    }
}

impl Error for TrapError {}

/// A fresh tag instance created by `new tag`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagInstance(pub u64);

/// An object created at a dispatch allocation site during one invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct CreatedObject {
    /// Which site allocated it.
    pub site: AllocSiteId,
    /// The new object.
    pub obj: ObjRef,
    /// Tag instances bound to it at allocation (resolved from the task's
    /// tag environment at allocation time).
    pub tags: Vec<(TagTypeId, TagInstance)>,
}

/// The result of one task invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskOutcome {
    /// Which declared exit the task took.
    pub exit: ExitId,
    /// Objects allocated into dispatch at allocation sites, in order.
    pub created: Vec<CreatedObject>,
    /// Final tag environment (per tag variable), for applying the exit's
    /// tag actions.
    pub tag_env: Vec<Option<TagInstance>>,
    /// Abstract cycles charged during the invocation.
    pub cycles: u64,
}

/// Control-flow signal threaded through statement execution.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
    TaskExit(ExitId),
}

type EResult<T> = Result<T, TrapError>;

/// Interpreter state: the program, the heap, and counters.
///
/// One `Interp` persists across many task invocations so the heap is
/// shared, mirroring Bamboo's global object space.
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p CompiledProgram,
    /// The shared heap.
    pub heap: Heap,
    /// Monotonic counter backing `new tag`.
    next_tag: u64,
    /// Total abstract cycles charged across all invocations.
    pub total_cycles: u64,
    /// Remaining step budget; a trap fires at zero (guards against
    /// non-terminating test programs).
    pub step_budget: u64,
    /// Captured `print`/`println` output.
    pub output: String,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter over `program` with a default step budget of
    /// one billion.
    pub fn new(program: &'p CompiledProgram) -> Self {
        Interp {
            program,
            heap: Heap::new(),
            next_tag: 0,
            total_cycles: 0,
            step_budget: 1_000_000_000,
            output: String::new(),
        }
    }

    /// Allocates an instance of `class` with default field values and
    /// without running a constructor (used to inject the startup object).
    pub fn alloc_raw(&mut self, class: ClassId) -> ObjRef {
        let fields = self.program.ir.classes[class.index()]
            .fields
            .iter()
            .map(|f| default_for(&f.ty))
            .collect();
        self.heap.alloc_object(class, fields)
    }

    /// Runs one invocation of `task` on `params`.
    ///
    /// `tag_env` provides the initial tag-variable bindings (from the
    /// dispatcher's `with`-clause matching); it is extended by `new tag`.
    ///
    /// # Errors
    ///
    /// Returns a [`TrapError`] on null dereference, index out of bounds,
    /// division by zero, or step-budget exhaustion.
    pub fn run_task(
        &mut self,
        task: TaskId,
        params: &[ObjRef],
        tag_env: Vec<Option<TagInstance>>,
    ) -> EResult<TaskOutcome> {
        let spec = &self.program.spec.tasks[task.index()];
        let body = &self.program.ir.tasks[task.index()];
        assert_eq!(params.len(), spec.params.len(), "wrong parameter count");
        let mut frame = Frame::for_body(body);
        for (slot, obj) in params.iter().enumerate() {
            frame.locals[slot] = Value::Ref(*obj);
        }
        let mut inv = Invocation {
            task: Some(task),
            created: Vec::new(),
            tag_env,
            cycles: 0,
        };
        inv.tag_env.resize(spec.tag_vars.len(), None);
        let flow = self.exec_block(&body.stmts, &mut frame, &mut inv)?;
        let exit = match flow {
            Flow::TaskExit(exit) => exit,
            _ => {
                // The resolver guarantees a taskexit on every path.
                return Err(TrapError::new("task body ended without taskexit"));
            }
        };
        self.total_cycles += inv.cycles;
        Ok(TaskOutcome {
            exit,
            created: inv.created,
            tag_env: inv.tag_env,
            cycles: inv.cycles,
        })
    }

    /// Calls a method directly (test helper).
    ///
    /// # Errors
    ///
    /// Returns a [`TrapError`] on any runtime trap.
    pub fn call_method(
        &mut self,
        obj: ObjRef,
        class: ClassId,
        method: u32,
        args: Vec<Value>,
    ) -> EResult<Value> {
        let mut inv = Invocation {
            task: None,
            created: Vec::new(),
            tag_env: Vec::new(),
            cycles: 0,
        };
        let result = self.invoke_method(obj, class, method, args, &mut inv);
        self.total_cycles += inv.cycles;
        result
    }

    fn invoke_method(
        &mut self,
        obj: ObjRef,
        class: ClassId,
        method: u32,
        args: Vec<Value>,
        inv: &mut Invocation,
    ) -> EResult<Value> {
        inv.cycles += 8; // call overhead
        let m = &self.program.ir.classes[class.index()].methods[method as usize];
        let mut frame = Frame::for_body(&m.body);
        frame.locals[0] = Value::Ref(obj);
        for (i, arg) in args.into_iter().enumerate() {
            frame.locals[i + 1] = arg;
        }
        match self.exec_block(&m.body.stmts, &mut frame, inv)? {
            Flow::Return(v) => Ok(v),
            Flow::TaskExit(_) => Err(TrapError::new("taskexit escaped a method body")),
            _ => Ok(default_for(&m.ret)),
        }
    }

    fn exec_block(
        &mut self,
        stmts: &[IrStmt],
        frame: &mut Frame,
        inv: &mut Invocation,
    ) -> EResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(stmt, frame, inv)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &IrStmt,
        frame: &mut Frame,
        inv: &mut Invocation,
    ) -> EResult<Flow> {
        self.charge(inv, 1)?;
        match stmt {
            IrStmt::Assign { target, value } => {
                let v = self.eval(value, frame, inv)?;
                match target {
                    IrPlace::Local(slot) => frame.locals[*slot as usize] = v,
                    IrPlace::Field { obj, field } => {
                        let r = self.eval_ref(obj, frame, inv)?;
                        self.heap.set_field(r, *field, v);
                    }
                    IrPlace::Index { arr, idx } => {
                        let r = self.eval_ref(arr, frame, inv)?;
                        let i = self.eval(idx, frame, inv)?.as_int();
                        let items = self.heap.array_mut(r);
                        let len = items.len();
                        let slot = items.get_mut(i as usize).ok_or_else(|| {
                            TrapError::new(format!("index {i} out of bounds (len {len})"))
                        })?;
                        *slot = v;
                    }
                }
                Ok(Flow::Normal)
            }
            IrStmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                if self.eval(cond, frame, inv)?.as_bool() {
                    self.exec_block(then_blk, frame, inv)
                } else {
                    self.exec_block(else_blk, frame, inv)
                }
            }
            IrStmt::While { cond, body } => {
                while self.eval(cond, frame, inv)?.as_bool() {
                    match self.exec_block(body, frame, inv)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        other => return Ok(other),
                    }
                    self.charge(inv, 1)?;
                }
                Ok(Flow::Normal)
            }
            IrStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let f @ (Flow::Return(_) | Flow::TaskExit(_)) =
                    self.exec_block(init, frame, inv)?
                {
                    return Ok(f);
                }
                loop {
                    if let Some(cond) = cond {
                        if !self.eval(cond, frame, inv)?.as_bool() {
                            break;
                        }
                    }
                    match self.exec_block(body, frame, inv)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        other => return Ok(other),
                    }
                    if let f @ (Flow::Return(_) | Flow::TaskExit(_)) =
                        self.exec_block(step, frame, inv)?
                    {
                        return Ok(f);
                    }
                    self.charge(inv, 1)?;
                }
                Ok(Flow::Normal)
            }
            IrStmt::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(e, frame, inv)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            IrStmt::Break => Ok(Flow::Break),
            IrStmt::Continue => Ok(Flow::Continue),
            IrStmt::TaskExit(exit) => Ok(Flow::TaskExit(*exit)),
            IrStmt::NewTag { var, tag_type: _ } => {
                let instance = TagInstance(self.next_tag);
                self.next_tag += 1;
                inv.tag_env[var.index()] = Some(instance);
                Ok(Flow::Normal)
            }
            IrStmt::Expr(expr) => {
                self.eval(expr, frame, inv)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn eval_ref(
        &mut self,
        expr: &IrExpr,
        frame: &mut Frame,
        inv: &mut Invocation,
    ) -> EResult<ObjRef> {
        match self.eval(expr, frame, inv)? {
            Value::Ref(r) => Ok(r),
            Value::Null => Err(TrapError::new("null dereference")),
            other => Err(TrapError::new(format!("expected reference, found {other}"))),
        }
    }

    fn charge(&mut self, inv: &mut Invocation, cycles: u64) -> EResult<()> {
        inv.cycles += cycles;
        if self.step_budget <= cycles {
            return Err(TrapError::new(
                "step budget exhausted (non-terminating program?)",
            ));
        }
        self.step_budget -= cycles;
        Ok(())
    }

    fn eval(&mut self, expr: &IrExpr, frame: &mut Frame, inv: &mut Invocation) -> EResult<Value> {
        self.charge(inv, 1)?;
        match expr {
            IrExpr::ConstInt(v) => Ok(Value::Int(*v)),
            IrExpr::ConstFloat(v) => Ok(Value::Float(*v)),
            IrExpr::ConstBool(v) => Ok(Value::Bool(*v)),
            IrExpr::ConstStr(s) => Ok(Value::str(s)),
            IrExpr::Null => Ok(Value::Null),
            IrExpr::Local(slot) => Ok(frame.locals[*slot as usize].clone()),
            IrExpr::Field { obj, field } => {
                let r = self.eval_ref(obj, frame, inv)?;
                Ok(self.heap.field(r, *field).clone())
            }
            IrExpr::Index { arr, idx } => {
                let r = self.eval_ref(arr, frame, inv)?;
                let i = self.eval(idx, frame, inv)?.as_int();
                let items = self.heap.array(r);
                items.get(i as usize).cloned().ok_or_else(|| {
                    TrapError::new(format!("index {i} out of bounds (len {})", items.len()))
                })
            }
            IrExpr::CallMethod {
                obj,
                class,
                method,
                args,
            } => {
                let r = self.eval_ref(obj, frame, inv)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, frame, inv)?);
                }
                self.invoke_method(r, *class, *method, argv, inv)
            }
            IrExpr::CallBuiltin { builtin, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, frame, inv)?);
                }
                self.call_builtin(*builtin, argv, inv)
            }
            IrExpr::New { class, args, site } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, frame, inv)?);
                }
                let obj = self.alloc_raw(*class);
                self.charge(inv, 4)?;
                if let Some(ctor) = self.program.ir.classes[class.index()].ctor {
                    self.invoke_method(obj, *class, ctor as u32, argv, inv)?;
                }
                if let Some(site) = site {
                    let task = inv.task.expect("alloc sites only occur in task bodies");
                    let site_spec =
                        &self.program.spec.tasks[task.index()].alloc_sites[site.index()];
                    let mut tags = Vec::new();
                    for var in &site_spec.bound_tags {
                        if let Some(instance) = inv.tag_env[var.index()] {
                            let tt = self.program.spec.tasks[task.index()].tag_vars[var.index()]
                                .tag_type;
                            tags.push((tt, instance));
                        } else {
                            return Err(TrapError::new(format!(
                                "tag variable {var} unbound at allocation"
                            )));
                        }
                    }
                    inv.created.push(CreatedObject {
                        site: *site,
                        obj,
                        tags,
                    });
                }
                Ok(Value::Ref(obj))
            }
            IrExpr::NewArray { elem, len } => {
                let n = self.eval(len, frame, inv)?.as_int();
                if n < 0 {
                    return Err(TrapError::new(format!("negative array length {n}")));
                }
                self.charge(inv, n as u64 / 8 + 1)?;
                Ok(Value::Ref(
                    self.heap.alloc_array(n as usize, default_for(elem)),
                ))
            }
            IrExpr::Unary { op, expr } => {
                let v = self.eval(expr, frame, inv)?;
                Ok(match (op, v) {
                    (UnOp::Neg, Value::Int(v)) => Value::Int(v.wrapping_neg()),
                    (UnOp::Neg, Value::Float(v)) => Value::Float(-v),
                    (UnOp::Not, Value::Bool(v)) => Value::Bool(!v),
                    (op, v) => return Err(TrapError::new(format!("bad unary {op:?} on {v}"))),
                })
            }
            IrExpr::Binary { op, lhs, rhs } => {
                // Short-circuit forms first.
                match op {
                    BinOp::And => {
                        return Ok(Value::Bool(
                            self.eval(lhs, frame, inv)?.as_bool()
                                && self.eval(rhs, frame, inv)?.as_bool(),
                        ))
                    }
                    BinOp::Or => {
                        return Ok(Value::Bool(
                            self.eval(lhs, frame, inv)?.as_bool()
                                || self.eval(rhs, frame, inv)?.as_bool(),
                        ))
                    }
                    _ => {}
                }
                let a = self.eval(lhs, frame, inv)?;
                let b = self.eval(rhs, frame, inv)?;
                binary_op(*op, a, b)
            }
        }
    }

    fn call_builtin(
        &mut self,
        builtin: Builtin,
        mut args: Vec<Value>,
        inv: &mut Invocation,
    ) -> EResult<Value> {
        self.charge(inv, 4)?;
        let mut arg = |i: usize| std::mem::replace(&mut args[i], Value::Null);
        Ok(match builtin {
            Builtin::Print => {
                let s = arg(0);
                self.output.push_str(&s.to_string());
                Value::Null
            }
            Builtin::Println => {
                let s = arg(0);
                self.output.push_str(&s.to_string());
                self.output.push('\n');
                Value::Null
            }
            Builtin::Itoa => Value::str(arg(0).as_int().to_string()),
            Builtin::Ftoa => Value::str(arg(0).as_float().to_string()),
            Builtin::Itof => Value::Float(arg(0).as_int() as f64),
            Builtin::Ftoi => Value::Int(arg(0).as_float() as i64),
            Builtin::ParseInt => match arg(0) {
                Value::Str(s) => Value::Int(s.trim().parse().unwrap_or(0)),
                other => return Err(TrapError::new(format!("parse_int on {other}"))),
            },
            Builtin::Len => match arg(0) {
                Value::Str(s) => Value::Int(s.len() as i64),
                Value::Ref(r) => match self.heap.slot(r) {
                    Slot::Array(items) => Value::Int(items.len() as i64),
                    Slot::Object { .. } => return Err(TrapError::new("len of non-array object")),
                },
                Value::Null => return Err(TrapError::new("len of null")),
                other => return Err(TrapError::new(format!("len of {other}"))),
            },
            Builtin::Split => {
                let (s, sep) = match (arg(0), arg(1)) {
                    (Value::Str(s), Value::Str(sep)) => (s, sep),
                    _ => return Err(TrapError::new("split expects strings")),
                };
                let parts: Vec<Value> = if sep.is_empty() {
                    s.chars()
                        .map(|c| Value::Str(Rc::from(c.to_string().as_str())))
                        .collect()
                } else {
                    s.split(&*sep)
                        .filter(|p| !p.is_empty())
                        .map(|p| Value::Str(Rc::from(p)))
                        .collect()
                };
                self.charge(inv, s.len() as u64 / 4 + 1)?;
                Value::Ref(self.heap.alloc_array(parts.len(), Value::Null)).tap(|v| {
                    if let Value::Ref(r) = v {
                        *self.heap.array_mut(*r) = parts;
                    }
                })
            }
            Builtin::Substr => {
                let (s, start, end) = match (arg(0), arg(1), arg(2)) {
                    (Value::Str(s), Value::Int(a), Value::Int(b)) => (s, a, b),
                    _ => return Err(TrapError::new("substr expects (String, int, int)")),
                };
                let len = s.len() as i64;
                let start = start.clamp(0, len) as usize;
                let end = end.clamp(start as i64, len) as usize;
                Value::Str(Rc::from(&s[start..end]))
            }
            Builtin::Sqrt => Value::Float(arg(0).as_float().sqrt()),
            Builtin::Sin => Value::Float(arg(0).as_float().sin()),
            Builtin::Cos => Value::Float(arg(0).as_float().cos()),
            Builtin::Exp => Value::Float(arg(0).as_float().exp()),
            Builtin::Log => Value::Float(arg(0).as_float().ln()),
            Builtin::Pow => Value::Float(arg(0).as_float().powf(arg(1).as_float())),
            Builtin::Floor => Value::Float(arg(0).as_float().floor()),
            Builtin::Abs => match arg(0) {
                Value::Int(v) => Value::Int(v.abs()),
                Value::Float(v) => Value::Float(v.abs()),
                other => return Err(TrapError::new(format!("abs of {other}"))),
            },
            Builtin::Min => match (arg(0), arg(1)) {
                (Value::Int(a), Value::Int(b)) => Value::Int(a.min(b)),
                (Value::Float(a), Value::Float(b)) => Value::Float(a.min(b)),
                _ => return Err(TrapError::new("min expects matching numeric types")),
            },
            Builtin::Max => match (arg(0), arg(1)) {
                (Value::Int(a), Value::Int(b)) => Value::Int(a.max(b)),
                (Value::Float(a), Value::Float(b)) => Value::Float(a.max(b)),
                _ => return Err(TrapError::new("max expects matching numeric types")),
            },
        })
    }
}

/// Small tap helper used by `split` to fill the freshly allocated array.
trait Tap: Sized {
    fn tap(self, f: impl FnOnce(&Self)) -> Self {
        f(&self);
        self
    }
}
impl Tap for Value {}

fn binary_op(op: BinOp, a: Value, b: Value) -> EResult<Value> {
    use BinOp::*;
    Ok(match (op, a, b) {
        (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(b)),
        (Add, Value::Float(a), Value::Float(b)) => Value::Float(a + b),
        (Add, Value::Str(a), Value::Str(b)) => Value::str(format!("{a}{b}")),
        (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(b)),
        (Sub, Value::Float(a), Value::Float(b)) => Value::Float(a - b),
        (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(b)),
        (Mul, Value::Float(a), Value::Float(b)) => Value::Float(a * b),
        (Div, Value::Int(a), Value::Int(b)) => {
            if b == 0 {
                return Err(TrapError::new("division by zero"));
            }
            Value::Int(a.wrapping_div(b))
        }
        (Div, Value::Float(a), Value::Float(b)) => Value::Float(a / b),
        (Rem, Value::Int(a), Value::Int(b)) => {
            if b == 0 {
                return Err(TrapError::new("remainder by zero"));
            }
            Value::Int(a.wrapping_rem(b))
        }
        (Eq, a, b) => Value::Bool(ref_eq(&a, &b)),
        (Ne, a, b) => Value::Bool(!ref_eq(&a, &b)),
        (Lt, Value::Int(a), Value::Int(b)) => Value::Bool(a < b),
        (Lt, Value::Float(a), Value::Float(b)) => Value::Bool(a < b),
        (Le, Value::Int(a), Value::Int(b)) => Value::Bool(a <= b),
        (Le, Value::Float(a), Value::Float(b)) => Value::Bool(a <= b),
        (Gt, Value::Int(a), Value::Int(b)) => Value::Bool(a > b),
        (Gt, Value::Float(a), Value::Float(b)) => Value::Bool(a > b),
        (Ge, Value::Int(a), Value::Int(b)) => Value::Bool(a >= b),
        (Ge, Value::Float(a), Value::Float(b)) => Value::Bool(a >= b),
        (op, a, b) => return Err(TrapError::new(format!("bad binary {op:?} on {a} and {b}"))),
    })
}

/// Equality: by value for primitives and strings, by identity for
/// references, and `null` equals only `null`.
fn ref_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x == y,
        (x, y) => x == y,
    }
}

fn default_for(ty: &Type) -> Value {
    match ty {
        Type::Int => Value::Int(0),
        Type::Float => Value::Float(0.0),
        Type::Bool => Value::Bool(false),
        Type::Str => Value::str(""),
        _ => Value::Null,
    }
}

/// Per-invocation bookkeeping.
struct Invocation {
    task: Option<TaskId>,
    created: Vec<CreatedObject>,
    tag_env: Vec<Option<TagInstance>>,
    cycles: u64,
}

/// A call frame: flat local slots.
struct Frame {
    locals: Vec<Value>,
}

impl Frame {
    fn for_body(body: &IrBody) -> Self {
        Frame {
            locals: vec![Value::Null; body.n_slots],
        }
    }
}

// Interp intentionally does not implement Clone: the heap may be large.

#[allow(dead_code)]
fn _assert_traits() {
    fn is_debug<T: fmt::Debug>() {}
    is_debug::<TrapError>();
    is_debug::<TaskOutcome>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;
    use crate::ids::TaskId;
    use crate::interp::Value;

    /// Compiles a program whose single task runs `body_src` and writes
    /// results into an `Out` object's fields.
    fn run_snippet(fields: &str, body_src: &str) -> (Value, Value) {
        let src = format!(
            r#"
            class StartupObject {{ flag initialstate; }}
            class Out {{ flag done; {fields} }}
            class Node {{ int v; Node next; }}
            class Helper {{
                int fact(int n) {{
                    if (n <= 1) {{ return 1; }}
                    return n * this.fact(n - 1);
                }}
                int listSum(Node head) {{
                    int total = 0;
                    Node cur = head;
                    while (cur != null) {{
                        total = total + cur.v;
                        cur = cur.next;
                    }}
                    return total;
                }}
            }}
            task go(StartupObject s in initialstate) {{
                Out out = new Out(){{ done := true }};
                Helper h = new Helper();
                {body_src}
                taskexit(s: initialstate := false);
            }}
            task sink(Out o in done) {{ taskexit(o: done := false); }}
            "#
        );
        let compiled = compile_source("snippet", &src).expect("snippet compiles");
        let mut interp = Interp::new(&compiled);
        let startup = interp.alloc_raw(compiled.spec.startup.class);
        let outcome = interp
            .run_task(TaskId::new(0), &[startup], vec![])
            .expect("snippet runs");
        let out = outcome
            .created
            .iter()
            .find(|c| compiled.spec.class(interp.heap.class_of(c.obj)).name == "Out")
            .expect("Out created")
            .obj;
        (
            interp.heap.field(out, 0).clone(),
            interp.heap.field(out, 1).clone(),
        )
    }

    #[test]
    fn recursive_method_computes_factorial() {
        let (a, b) = run_snippet(
            "int f6; int f10;",
            "out.f6 = h.fact(6); out.f10 = h.fact(10);",
        );
        assert_eq!(a, Value::Int(720));
        assert_eq!(b, Value::Int(3628800));
    }

    #[test]
    fn linked_list_traversal_with_null_checks() {
        let (sum, len) = run_snippet(
            "int sum; int len;",
            r#"
            Node head = new Node();
            head.v = 5;
            head.next = new Node();
            head.next.v = 7;
            head.next.next = new Node();
            head.next.next.v = 11;
            out.sum = h.listSum(head);
            int n = 0;
            Node cur = head;
            while (cur != null) { n = n + 1; cur = cur.next; }
            out.len = n;
            "#,
        );
        assert_eq!(sum, Value::Int(23));
        assert_eq!(len, Value::Int(3));
    }

    #[test]
    fn string_builtins_work_together() {
        let (count, text) = run_snippet(
            "int count; String text;",
            r#"
            String sentence = "the quick brown fox";
            String[] words = split(sentence, " ");
            out.count = len(words);
            out.text = substr(sentence, 4, 9) + "/" + itoa(parse_int("42"));
            "#,
        );
        assert_eq!(count, Value::Int(4));
        assert_eq!(text, Value::str("quick/42"));
    }

    #[test]
    fn float_math_builtins() {
        let (a, b) = run_snippet(
            "float a; float b;",
            r#"
            out.a = sqrt(pow(3.0, 2.0) + 16.0);
            out.b = floor(exp(log(7.9)));
            "#,
        );
        assert_eq!(a, Value::Float(5.0));
        assert_eq!(b, Value::Float(7.0));
    }

    #[test]
    fn array_out_of_bounds_traps() {
        let compiled = compile_source(
            "oob",
            r#"
            class StartupObject { flag initialstate; }
            task go(StartupObject s in initialstate) {
                int[] xs = new int[3];
                xs[5] = 1;
                taskexit(s: initialstate := false);
            }
            "#,
        )
        .expect("compiles");
        let mut interp = Interp::new(&compiled);
        let startup = interp.alloc_raw(compiled.spec.startup.class);
        let err = interp
            .run_task(TaskId::new(0), &[startup], vec![])
            .unwrap_err();
        assert!(err.message.contains("out of bounds"), "{}", err.message);
    }

    #[test]
    fn null_dereference_traps() {
        let compiled = compile_source(
            "nullderef",
            r#"
            class StartupObject { flag initialstate; }
            class Node { int v; Node next; }
            task go(StartupObject s in initialstate) {
                Node n = new Node();
                int v = n.next.v;
                taskexit(s: initialstate := false);
            }
            "#,
        )
        .expect("compiles");
        let mut interp = Interp::new(&compiled);
        let startup = interp.alloc_raw(compiled.spec.startup.class);
        let err = interp
            .run_task(TaskId::new(0), &[startup], vec![])
            .unwrap_err();
        assert!(err.message.contains("null dereference"), "{}", err.message);
    }

    #[test]
    fn step_budget_stops_infinite_loops() {
        let compiled = compile_source(
            "inf",
            r#"
            class StartupObject { flag initialstate; }
            task go(StartupObject s in initialstate) {
                int x = 0;
                while (true) { x = x + 1; }
                taskexit(s: initialstate := false);
            }
            "#,
        )
        .expect("compiles");
        let mut interp = Interp::new(&compiled);
        interp.step_budget = 10_000;
        let startup = interp.alloc_raw(compiled.spec.startup.class);
        let err = interp
            .run_task(TaskId::new(0), &[startup], vec![])
            .unwrap_err();
        assert!(err.message.contains("step budget"), "{}", err.message);
    }

    #[test]
    fn print_output_is_captured() {
        let compiled = compile_source(
            "hello",
            r#"
            class StartupObject { flag initialstate; }
            task go(StartupObject s in initialstate) {
                print("hello ");
                println("world");
                taskexit(s: initialstate := false);
            }
            "#,
        )
        .expect("compiles");
        let mut interp = Interp::new(&compiled);
        let startup = interp.alloc_raw(compiled.spec.startup.class);
        interp
            .run_task(TaskId::new(0), &[startup], vec![])
            .expect("runs");
        assert_eq!(interp.output, "hello world\n");
    }
}
