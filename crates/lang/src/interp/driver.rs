//! Reference dispatcher: the executable semantics of Bamboo.
//!
//! A deliberately simple, obviously-correct implementation of data-oriented
//! task dispatch: scan all live objects for a parameter assignment whose
//! abstract states satisfy some task's guards (with consistent tag
//! bindings), invoke the task, apply the taken exit's flag/tag actions, and
//! repeat until quiescence. The production runtime (crate
//! `bamboo-runtime`) implements the same semantics with distributed
//! per-core schedulers; tests compare the two.

use crate::ids::{ClassId, ExitId, TagTypeId, TagVarId, TaskId};
use crate::interp::eval::{Interp, TagInstance, TaskOutcome, TrapError};
use crate::interp::value::ObjRef;
use crate::spec::{FlagOrTagAction, FlagSet, TaskSpec};
use crate::CompiledProgram;
use std::collections::HashMap;

/// Dispatch metadata for one object: its abstract state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObjectMeta {
    /// Current flag valuation.
    pub flags: FlagSet,
    /// Bound tag instances.
    pub tags: Vec<(TagTypeId, TagInstance)>,
}

/// One dispatched invocation, for the report.
#[derive(Clone, Debug, PartialEq)]
pub struct InvocationRecord {
    /// The task invoked.
    pub task: TaskId,
    /// The parameter objects, in parameter order.
    pub params: Vec<ObjRef>,
    /// The exit taken.
    pub exit: ExitId,
    /// Abstract cycles charged.
    pub cycles: u64,
    /// Number of dispatch objects created.
    pub created: usize,
}

/// Result of running a program to quiescence.
#[derive(Clone, Debug, PartialEq)]
pub struct DriverReport {
    /// Every invocation, in execution order.
    pub invocations: Vec<InvocationRecord>,
    /// Whether the run reached quiescence (no task can fire) rather than
    /// the invocation limit.
    pub quiesced: bool,
    /// Total abstract cycles.
    pub total_cycles: u64,
    /// Captured `print` output.
    pub output: String,
}

/// The reference executor.
#[derive(Debug)]
pub struct ReferenceDriver<'p> {
    program: &'p CompiledProgram,
    /// The interpreter (owns the heap).
    pub interp: Interp<'p>,
    /// Abstract state per dispatchable object.
    pub meta: HashMap<ObjRef, ObjectMeta>,
    /// Live dispatchable objects in creation order.
    objects: Vec<ObjRef>,
}

impl<'p> ReferenceDriver<'p> {
    /// Creates a driver and injects the startup object.
    pub fn new(program: &'p CompiledProgram) -> Self {
        let mut interp = Interp::new(program);
        let startup = program.spec.startup;
        let obj = interp.alloc_raw(startup.class);
        let mut meta = HashMap::new();
        meta.insert(
            obj,
            ObjectMeta {
                flags: FlagSet::new().with(startup.flag, true),
                tags: Vec::new(),
            },
        );
        ReferenceDriver {
            program,
            interp,
            meta,
            objects: vec![obj],
        }
    }

    /// Runs until no task can fire, or until `max_invocations`.
    ///
    /// # Errors
    ///
    /// Propagates interpreter traps.
    pub fn run(&mut self, max_invocations: usize) -> Result<DriverReport, TrapError> {
        let mut invocations = Vec::new();
        let mut quiesced = false;
        while invocations.len() < max_invocations {
            match self.find_match() {
                Some((task, params, tag_env)) => {
                    let record = self.invoke(task, params, tag_env)?;
                    invocations.push(record);
                }
                None => {
                    quiesced = true;
                    break;
                }
            }
        }
        Ok(DriverReport {
            invocations,
            quiesced,
            total_cycles: self.interp.total_cycles,
            output: std::mem::take(&mut self.interp.output),
        })
    }

    /// Runs one dispatch step; returns `None` at quiescence.
    ///
    /// # Errors
    ///
    /// Propagates interpreter traps.
    pub fn step(&mut self) -> Result<Option<InvocationRecord>, TrapError> {
        match self.find_match() {
            Some((task, params, tag_env)) => Ok(Some(self.invoke(task, params, tag_env)?)),
            None => Ok(None),
        }
    }

    /// Finds the first (task declaration order, object creation order)
    /// parameter assignment that can fire.
    fn find_match(&self) -> Option<(TaskId, Vec<ObjRef>, Vec<Option<TagInstance>>)> {
        for (task_id, task) in self.program.spec.tasks_enumerated() {
            let mut assignment = Vec::new();
            let mut tag_env = vec![None; task.tag_vars.len()];
            if self.match_params(task, 0, &mut assignment, &mut tag_env) {
                return Some((task_id, assignment, tag_env));
            }
        }
        None
    }

    fn match_params(
        &self,
        task: &TaskSpec,
        param: usize,
        assignment: &mut Vec<ObjRef>,
        tag_env: &mut Vec<Option<TagInstance>>,
    ) -> bool {
        if param == task.params.len() {
            return !task.params.is_empty();
        }
        let spec = &task.params[param];
        for &obj in &self.objects {
            if assignment.contains(&obj) {
                continue;
            }
            let Some(meta) = self.meta.get(&obj) else {
                continue;
            };
            if self.interp.heap.class_of(obj) != spec.class {
                continue;
            }
            if !spec.guard.eval(meta.flags) {
                continue;
            }
            // Tag constraints: bind or check each.
            let saved_env = tag_env.clone();
            let mut ok = true;
            for tc in &spec.tags {
                match tag_env[tc.var.index()] {
                    Some(instance) => {
                        if !meta.tags.contains(&(tc.tag_type, instance)) {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        // Bind to the first instance of the right type.
                        match meta.tags.iter().find(|(tt, _)| *tt == tc.tag_type) {
                            Some((_, instance)) => tag_env[tc.var.index()] = Some(*instance),
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
            }
            if ok {
                assignment.push(obj);
                if self.match_params(task, param + 1, assignment, tag_env) {
                    return true;
                }
                assignment.pop();
            }
            *tag_env = saved_env;
        }
        false
    }

    fn invoke(
        &mut self,
        task_id: TaskId,
        params: Vec<ObjRef>,
        tag_env: Vec<Option<TagInstance>>,
    ) -> Result<InvocationRecord, TrapError> {
        let outcome = self.interp.run_task(task_id, &params, tag_env)?;
        let created = outcome.created.len();
        self.apply_outcome(task_id, &params, &outcome);
        Ok(InvocationRecord {
            task: task_id,
            params,
            exit: outcome.exit,
            cycles: outcome.cycles,
            created,
        })
    }

    /// Applies an invocation's effects to dispatch state: exit actions on
    /// the parameters and registration of created objects.
    pub fn apply_outcome(&mut self, task_id: TaskId, params: &[ObjRef], outcome: &TaskOutcome) {
        let task = self.program.spec.task(task_id);
        let exit = task.exit(outcome.exit);
        for (param_idx, actions) in &exit.actions {
            let obj = params[param_idx.index()];
            let meta = self
                .meta
                .get_mut(&obj)
                .expect("parameter object has metadata");
            for action in actions {
                match action {
                    FlagOrTagAction::SetFlag(flag, value) => meta.flags.set(*flag, *value),
                    FlagOrTagAction::AddTag(var) => {
                        if let Some((tt, inst)) = resolve_tag(task, *var, outcome) {
                            if !meta.tags.contains(&(tt, inst)) {
                                meta.tags.push((tt, inst));
                            }
                        }
                    }
                    FlagOrTagAction::ClearTag(var) => {
                        if let Some((tt, inst)) = resolve_tag(task, *var, outcome) {
                            meta.tags.retain(|t| *t != (tt, inst));
                        }
                    }
                }
            }
        }
        for created in &outcome.created {
            let site = &task.alloc_sites[created.site.index()];
            self.meta.insert(
                created.obj,
                ObjectMeta {
                    flags: site.initial_flag_set(),
                    tags: created.tags.clone(),
                },
            );
            self.objects.push(created.obj);
        }
    }

    /// Returns the live dispatchable objects of `class` whose flags
    /// currently satisfy `flag` (test/result-extraction helper).
    pub fn objects_of(&self, class: ClassId) -> Vec<ObjRef> {
        self.objects
            .iter()
            .copied()
            .filter(|o| self.interp.heap.class_of(*o) == class)
            .collect()
    }
}

fn resolve_tag(
    task: &TaskSpec,
    var: TagVarId,
    outcome: &TaskOutcome,
) -> Option<(TagTypeId, TagInstance)> {
    let instance = outcome.tag_env.get(var.index()).copied().flatten()?;
    Some((task.tag_vars[var.index()].tag_type, instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;
    use crate::interp::value::Value;

    const KC: &str = r#"
        class StartupObject { flag initialstate; }
        class Text {
            flag process; flag submit;
            int count; int sectionId;
            Text(int id) { this.sectionId = id; }
            void process() { this.count = this.sectionId * 3 + 1; }
        }
        class Results {
            flag finished;
            int total; int merged; int expected;
            Results(int expected) { this.expected = expected; }
            boolean mergeResult(Text tp) {
                this.total = this.total + tp.count;
                this.merged = this.merged + 1;
                return this.merged == this.expected;
            }
        }
        task startup(StartupObject s in initialstate) {
            for (int i = 0; i < 4; i = i + 1) {
                Text tp = new Text(i){ process := true };
            }
            Results rp = new Results(4){ finished := false };
            taskexit(s: initialstate := false);
        }
        task processText(Text tp in process) {
            tp.process();
            taskexit(tp: process := false, submit := true);
        }
        task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
            boolean allprocessed = rp.mergeResult(tp);
            if (allprocessed) {
                taskexit(rp: finished := true; tp: submit := false);
            }
            taskexit(tp: submit := false);
        }
    "#;

    #[test]
    fn keyword_counting_runs_to_quiescence() {
        let program = compile_source("kc", KC).unwrap();
        let mut driver = ReferenceDriver::new(&program);
        let report = driver.run(1000).unwrap();
        assert!(report.quiesced);
        // 1 startup + 4 processText + 4 merge = 9 invocations.
        assert_eq!(report.invocations.len(), 9);
        // The Results object accumulated 1 + 4 + 7 + 10 = 22.
        let results_class = program.spec.class_by_name("Results").unwrap();
        let results = driver.objects_of(results_class);
        assert_eq!(results.len(), 1);
        assert_eq!(driver.interp.heap.field(results[0], 0), &Value::Int(22));
        // It ended in the `finished` state.
        let meta = &driver.meta[&results[0]];
        let finished = program
            .spec
            .class(results_class)
            .flag_by_name("finished")
            .unwrap();
        assert!(meta.flags.contains(finished));
    }

    #[test]
    fn startup_fires_exactly_once() {
        let program = compile_source("kc", KC).unwrap();
        let mut driver = ReferenceDriver::new(&program);
        let report = driver.run(1000).unwrap();
        let startup_id = program.spec.task_by_name("startup").unwrap();
        let count = report
            .invocations
            .iter()
            .filter(|r| r.task == startup_id)
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn invocation_limit_is_respected() {
        let program = compile_source("kc", KC).unwrap();
        let mut driver = ReferenceDriver::new(&program);
        let report = driver.run(3).unwrap();
        assert!(!report.quiesced);
        assert_eq!(report.invocations.len(), 3);
    }

    #[test]
    fn tags_pair_the_right_objects() {
        let src = r#"
            class StartupObject { flag initialstate; }
            class Drawing { flag saving; flag saved; int id; Drawing(int id) { this.id = id; } }
            class Image { flag raw; flag compressed; int id; Image(int id) { this.id = id; } }
            tagtype link;
            task startup(StartupObject s in initialstate) {
                for (int i = 0; i < 3; i = i + 1) {
                    tag t = new tag(link);
                    Drawing d = new Drawing(i){ saving := true, add t };
                    Image m = new Image(i){ raw := true, add t };
                }
                taskexit(s: initialstate := false);
            }
            task compress(Image m in raw) {
                taskexit(m: raw := false, compressed := true);
            }
            task finishsave(Drawing d in saving with link t, Image m in compressed with link t) {
                d.id = d.id * 100 + m.id;
                taskexit(d: saving := false, saved := true; m: compressed := false);
            }
        "#;
        // `new tag` in a loop requires fresh variables per iteration; this
        // program declares the tag inside the loop, which our resolver
        // rejects on re-declaration. Rewrite with distinct names instead.
        let src = src.replace(
            "for (int i = 0; i < 3; i = i + 1) {\n                    tag t = new tag(link);\n                    Drawing d = new Drawing(i){ saving := true, add t };\n                    Image m = new Image(i){ raw := true, add t };\n                }",
            r#"tag t0 = new tag(link);
               Drawing d0 = new Drawing(0){ saving := true, add t0 };
               Image m0 = new Image(0){ raw := true, add t0 };
               tag t1 = new tag(link);
               Drawing d1 = new Drawing(1){ saving := true, add t1 };
               Image m1 = new Image(1){ raw := true, add t1 };
               tag t2 = new tag(link);
               Drawing d2 = new Drawing(2){ saving := true, add t2 };
               Image m2 = new Image(2){ raw := true, add t2 };"#,
        );
        let program = compile_source("tags", &src).unwrap();
        let mut driver = ReferenceDriver::new(&program);
        let report = driver.run(100).unwrap();
        assert!(report.quiesced);
        let drawing_class = program.spec.class_by_name("Drawing").unwrap();
        for obj in driver.objects_of(drawing_class) {
            // Each drawing paired with its own image: id became id*100+id.
            let id = match driver.interp.heap.field(obj, 0) {
                Value::Int(v) => *v,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(id % 100, id / 100, "drawing paired with wrong image: {id}");
        }
    }
}
