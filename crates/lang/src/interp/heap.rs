//! Arena heap for interpreted programs.
//!
//! Objects and arrays live in one growable arena and are never collected —
//! interpreted executions are bounded (tests, profiling runs), so an arena
//! keeps references stable and cheap.

use crate::ids::ClassId;
use crate::interp::value::{ObjRef, Value};

/// Contents of one heap slot.
#[derive(Clone, Debug, PartialEq)]
pub enum Slot {
    /// A class instance.
    Object {
        /// The instance's class.
        class: ClassId,
        /// Field values, indexed by field index.
        fields: Vec<Value>,
    },
    /// An array.
    Array(Vec<Value>),
}

/// The interpreter heap: an arena of objects and arrays.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    slots: Vec<Slot>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Returns the number of allocated slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Allocates an object with `n_fields` default-`Null` fields.
    pub fn alloc_object(&mut self, class: ClassId, fields: Vec<Value>) -> ObjRef {
        let r = ObjRef(self.slots.len() as u32);
        self.slots.push(Slot::Object { class, fields });
        r
    }

    /// Allocates an array of `len` copies of `fill`.
    pub fn alloc_array(&mut self, len: usize, fill: Value) -> ObjRef {
        let r = ObjRef(self.slots.len() as u32);
        self.slots.push(Slot::Array(vec![fill; len]));
        r
    }

    /// Returns the slot behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range (references are never forged in
    /// well-typed programs).
    pub fn slot(&self, r: ObjRef) -> &Slot {
        &self.slots[r.index()]
    }

    /// Mutable access to the slot behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn slot_mut(&mut self, r: ObjRef) -> &mut Slot {
        &mut self.slots[r.index()]
    }

    /// Returns the class of the object at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is an array.
    pub fn class_of(&self, r: ObjRef) -> ClassId {
        match self.slot(r) {
            Slot::Object { class, .. } => *class,
            Slot::Array(_) => panic!("{r} is an array, not an object"),
        }
    }

    /// Reads field `idx` of the object at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is an array or the index is out of range.
    pub fn field(&self, r: ObjRef, idx: u32) -> &Value {
        match self.slot(r) {
            Slot::Object { fields, .. } => &fields[idx as usize],
            Slot::Array(_) => panic!("{r} is an array, not an object"),
        }
    }

    /// Writes field `idx` of the object at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is an array or the index is out of range.
    pub fn set_field(&mut self, r: ObjRef, idx: u32, value: Value) {
        match self.slot_mut(r) {
            Slot::Object { fields, .. } => fields[idx as usize] = value,
            Slot::Array(_) => panic!("{r} is an array, not an object"),
        }
    }

    /// Returns the array behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not an array.
    pub fn array(&self, r: ObjRef) -> &[Value] {
        match self.slot(r) {
            Slot::Array(items) => items,
            Slot::Object { .. } => panic!("{r} is an object, not an array"),
        }
    }

    /// Mutable access to the array behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not an array.
    pub fn array_mut(&mut self, r: ObjRef) -> &mut Vec<Value> {
        match self.slot_mut(r) {
            Slot::Array(items) => items,
            Slot::Object { .. } => panic!("{r} is an object, not an array"),
        }
    }

    /// Iterates over all object slots as `(ref, class)` pairs (arrays
    /// skipped).
    pub fn objects(&self) -> impl Iterator<Item = (ObjRef, ClassId)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Object { class, .. } => Some((ObjRef(i as u32), *class)),
            Slot::Array(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_fields_read_write() {
        let mut heap = Heap::new();
        let r = heap.alloc_object(ClassId::new(0), vec![Value::Int(0), Value::Null]);
        heap.set_field(r, 0, Value::Int(7));
        assert_eq!(heap.field(r, 0), &Value::Int(7));
        assert_eq!(heap.class_of(r), ClassId::new(0));
    }

    #[test]
    fn arrays_read_write() {
        let mut heap = Heap::new();
        let r = heap.alloc_array(3, Value::Float(0.0));
        heap.array_mut(r)[2] = Value::Float(2.5);
        assert_eq!(heap.array(r)[2], Value::Float(2.5));
        assert_eq!(heap.array(r).len(), 3);
    }

    #[test]
    fn objects_iterator_skips_arrays() {
        let mut heap = Heap::new();
        heap.alloc_array(1, Value::Null);
        let o = heap.alloc_object(ClassId::new(2), vec![]);
        let objs: Vec<_> = heap.objects().collect();
        assert_eq!(objs, vec![(o, ClassId::new(2))]);
    }

    #[test]
    #[should_panic(expected = "is an array")]
    fn field_access_on_array_panics() {
        let mut heap = Heap::new();
        let r = heap.alloc_array(1, Value::Null);
        heap.field(r, 0);
    }
}
