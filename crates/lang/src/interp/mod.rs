//! Reference interpreter for compiled Bamboo DSL programs.
//!
//! - [`value`] / [`heap`] — the dynamic value model and arena heap;
//! - [`eval`] — the per-invocation evaluator ([`Interp`]);
//! - [`driver`] — the reference dispatcher ([`ReferenceDriver`]), the
//!   executable semantics all other executors are tested against.

pub mod driver;
pub mod eval;
pub mod heap;
pub mod value;

pub use driver::{DriverReport, InvocationRecord, ObjectMeta, ReferenceDriver};
pub use eval::{CreatedObject, Interp, TagInstance, TaskOutcome, TrapError};
pub use heap::{Heap, Slot};
pub use value::{ObjRef, Value};
