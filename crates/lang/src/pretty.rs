//! AST pretty-printer: renders a parsed [`Unit`] back to Bamboo source.
//!
//! The output re-parses to a structurally identical AST (the round-trip
//! property test in `tests/properties.rs` and this module's unit tests
//! enforce it), which makes the printer useful for golden tests, program
//! transformation tooling, and diagnostics.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole unit as Bamboo source.
pub fn unit_to_source(unit: &Unit) -> String {
    let mut out = String::new();
    for tt in &unit.tag_types {
        let _ = writeln!(out, "tagtype {};", tt.name);
    }
    for class in &unit.classes {
        out.push_str(&class_to_source(class));
        out.push('\n');
    }
    for task in &unit.tasks {
        out.push_str(&task_to_source(task));
        out.push('\n');
    }
    out
}

/// Renders one class declaration.
pub fn class_to_source(class: &ClassDecl) -> String {
    let mut out = format!("class {} {{\n", class.name);
    for (flag, _) in &class.flags {
        let _ = writeln!(out, "    flag {flag};");
    }
    for field in &class.fields {
        let _ = writeln!(out, "    {} {};", type_to_source(&field.ty), field.name);
    }
    for method in &class.methods {
        let params: Vec<String> = method
            .params
            .iter()
            .map(|(ty, name)| format!("{} {name}", type_to_source(ty)))
            .collect();
        if method.is_ctor {
            let _ = writeln!(
                out,
                "    {}({}) {}",
                method.name,
                params.join(", "),
                block_to_source(&method.body, 1)
            );
        } else {
            let _ = writeln!(
                out,
                "    {} {}({}) {}",
                type_to_source(&method.ret),
                method.name,
                params.join(", "),
                block_to_source(&method.body, 1)
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders one task declaration.
pub fn task_to_source(task: &TaskDecl) -> String {
    let params: Vec<String> = task
        .params
        .iter()
        .map(|p| {
            let mut s = format!(
                "{} {} in {}",
                p.class,
                p.name,
                flag_expr_to_source(&p.guard)
            );
            if !p.tags.is_empty() {
                let tags: Vec<String> = p
                    .tags
                    .iter()
                    .map(|(tt, var)| format!("{tt} {var}"))
                    .collect();
                let _ = write!(s, " with {}", tags.join(" and "));
            }
            s
        })
        .collect();
    format!(
        "task {}({}) {}\n",
        task.name,
        params.join(", "),
        block_to_source(&task.body, 0)
    )
}

/// Renders a syntactic type.
pub fn type_to_source(ty: &TypeExpr) -> String {
    match ty {
        TypeExpr::Int => "int".to_string(),
        TypeExpr::Float => "float".to_string(),
        TypeExpr::Bool => "boolean".to_string(),
        TypeExpr::Str => "String".to_string(),
        TypeExpr::Void => "void".to_string(),
        TypeExpr::Named(name) => name.clone(),
        TypeExpr::Array(elem) => format!("{}[]", type_to_source(elem)),
    }
}

/// Renders a flag guard expression (fully parenthesized, so precedence
/// round-trips).
pub fn flag_expr_to_source(expr: &FlagExprAst) -> String {
    match expr {
        FlagExprAst::Flag(name, _) => name.clone(),
        FlagExprAst::Const(true, _) => "true".to_string(),
        FlagExprAst::Const(false, _) => "false".to_string(),
        FlagExprAst::Not(inner) => format!("!({})", flag_expr_to_source(inner)),
        FlagExprAst::And(a, b) => {
            format!(
                "({} and {})",
                flag_expr_to_source(a),
                flag_expr_to_source(b)
            )
        }
        FlagExprAst::Or(a, b) => {
            format!("({} or {})", flag_expr_to_source(a), flag_expr_to_source(b))
        }
    }
}

fn indent(depth: usize) -> String {
    "    ".repeat(depth)
}

fn block_to_source(block: &Block, depth: usize) -> String {
    let mut out = String::from("{\n");
    for stmt in &block.stmts {
        out.push_str(&stmt_to_source(stmt, depth + 1));
    }
    let _ = write!(out, "{}}}", indent(depth));
    out
}

fn stmt_to_source(stmt: &Stmt, depth: usize) -> String {
    let pad = indent(depth);
    match stmt {
        Stmt::Local { ty, name, init, .. } => match init {
            Some(init) => format!(
                "{pad}{} {name} = {};\n",
                type_to_source(ty),
                expr_to_source(init)
            ),
            None => format!("{pad}{} {name};\n", type_to_source(ty)),
        },
        Stmt::Assign { lhs, rhs, .. } => {
            format!("{pad}{} = {};\n", expr_to_source(lhs), expr_to_source(rhs))
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            let mut out = format!(
                "{pad}if ({}) {}",
                expr_to_source(cond),
                block_to_source(then_blk, depth)
            );
            if let Some(else_blk) = else_blk {
                let _ = write!(out, " else {}", block_to_source(else_blk, depth));
            }
            out.push('\n');
            out
        }
        Stmt::While { cond, body, .. } => {
            format!(
                "{pad}while ({}) {}\n",
                expr_to_source(cond),
                block_to_source(body, depth)
            )
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            let simple = |s: &Option<Box<Stmt>>| match s {
                Some(s) => {
                    let rendered = stmt_to_source(s, 0);
                    rendered.trim().trim_end_matches(';').to_string()
                }
                None => String::new(),
            };
            format!(
                "{pad}for ({}; {}; {}) {}\n",
                simple(init),
                cond.as_ref().map(expr_to_source).unwrap_or_default(),
                simple(step),
                block_to_source(body, depth)
            )
        }
        Stmt::Return { value, .. } => match value {
            Some(v) => format!("{pad}return {};\n", expr_to_source(v)),
            None => format!("{pad}return;\n"),
        },
        Stmt::Break(_) => format!("{pad}break;\n"),
        Stmt::Continue(_) => format!("{pad}continue;\n"),
        Stmt::TaskExit { actions, .. } => {
            let groups: Vec<String> = actions
                .iter()
                .map(|(param, list)| {
                    let acts: Vec<String> = list.iter().map(action_to_source).collect();
                    format!("{param}: {}", acts.join(", "))
                })
                .collect();
            format!("{pad}taskexit({});\n", groups.join("; "))
        }
        Stmt::NewTag { var, tag_type, .. } => {
            format!("{pad}tag {var} = new tag({tag_type});\n")
        }
        Stmt::Expr(expr) => format!("{pad}{};\n", expr_to_source(expr)),
        Stmt::Block(block) => format!("{pad}{}\n", block_to_source(block, depth)),
    }
}

fn action_to_source(action: &FlagOrTagActionAst) -> String {
    match action {
        FlagOrTagActionAst::SetFlag(flag, value, _) => format!("{flag} := {value}"),
        FlagOrTagActionAst::AddTag(var, _) => format!("add {var}"),
        FlagOrTagActionAst::ClearTag(var, _) => format!("clear {var}"),
    }
}

/// Renders an expression (fully parenthesized).
pub fn expr_to_source(expr: &Expr) -> String {
    match expr {
        Expr::IntLit(v, _) => v.to_string(),
        Expr::FloatLit(v, _) => {
            let s = v.to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::BoolLit(v, _) => v.to_string(),
        Expr::StrLit(s, _) => format!(
            "\"{}\"",
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t")
        ),
        Expr::Var(name, _) => name.clone(),
        Expr::This(_) => "this".to_string(),
        Expr::Field { obj, name, .. } => format!("{}.{name}", expr_to_source(obj)),
        Expr::Index { arr, idx, .. } => {
            format!("{}[{}]", expr_to_source(arr), expr_to_source(idx))
        }
        Expr::Call {
            recv, name, args, ..
        } => {
            let args: Vec<String> = args.iter().map(expr_to_source).collect();
            match recv {
                Some(recv) => format!("{}.{name}({})", expr_to_source(recv), args.join(", ")),
                None => format!("{name}({})", args.join(", ")),
            }
        }
        Expr::New {
            class, args, state, ..
        } => {
            let args: Vec<String> = args.iter().map(expr_to_source).collect();
            let mut out = format!("new {class}({})", args.join(", "));
            if !state.is_empty() {
                let acts: Vec<String> = state.iter().map(action_to_source).collect();
                let _ = write!(out, "{{ {} }}", acts.join(", "));
            }
            out
        }
        Expr::NewArray { elem, len, .. } => {
            format!("new {}[{}]", type_to_source(elem), expr_to_source(len))
        }
        Expr::Unary { op, expr, .. } => {
            let op = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{op}({})", expr_to_source(expr))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let op = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {op} {})", expr_to_source(lhs), expr_to_source(rhs))
        }
    }
}

/// Structural AST equality ignoring spans (the round-trip relation).
pub fn units_equal_modulo_spans(a: &Unit, b: &Unit) -> bool {
    // Cheapest faithful implementation: print both and compare — the
    // printer is deterministic and span-free.
    unit_to_source(a) == unit_to_source(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let unit = parse(lex(src).expect("lexes")).expect("parses");
        let printed = unit_to_source(&unit);
        let reparsed = parse(lex(&printed).unwrap_or_else(|e| panic!("relex {printed}: {e}")))
            .unwrap_or_else(|e| panic!("reparse {printed}: {e}"));
        assert!(
            units_equal_modulo_spans(&unit, &reparsed),
            "round trip diverged:\n--- first print ---\n{printed}\n--- second print ---\n{}",
            unit_to_source(&reparsed)
        );
    }

    #[test]
    fn keyword_counting_round_trips() {
        round_trip(
            r#"
            class StartupObject { flag initialstate; }
            class Text {
                flag process; flag submit;
                String section; int count;
                Text(String s) { this.section = s; }
                void process() {
                    String[] words = split(this.section, " ");
                    int n = 0;
                    for (int i = 0; i < len(words); i = i + 1) {
                        if (words[i] == "x") { n = n + 1; }
                    }
                    this.count = n;
                }
            }
            task startup(StartupObject s in initialstate) {
                Text tp = new Text("x y x"){ process := true };
                taskexit(s: initialstate := false);
            }
            task processText(Text tp in process) {
                tp.process();
                taskexit(tp: process := false, submit := true);
            }
            "#,
        );
    }

    #[test]
    fn tags_and_guards_round_trip() {
        round_trip(
            r#"
            tagtype link;
            class StartupObject { flag initialstate; }
            class D { flag saving; }
            class I { flag raw; flag compressed; }
            task startup(StartupObject s in initialstate) {
                tag t = new tag(link);
                D d = new D(){ saving := true, add t };
                I i = new I(){ raw := true, add t };
                taskexit(s: initialstate := false);
            }
            task fin(D d in saving with link t, I i in (compressed or raw) and !saving with link t) {
                taskexit(d: saving := false, clear t; i: compressed := false);
            }
            "#,
        );
    }

    #[test]
    fn expressions_and_control_flow_round_trip() {
        round_trip(
            r#"
            class StartupObject { flag initialstate; }
            class C {
                int x; float y; boolean b; int[] xs;
                int m(int a, float f) {
                    while (a > 0) {
                        a = a - 1;
                        if (a % 3 == 0) { continue; }
                        if (a == 1) { break; }
                    }
                    this.y = -f * 2.5 + sqrt(4.0);
                    this.b = !(a < 5) || this.x >= 2 && true;
                    this.xs = new int[10];
                    this.xs[0] = this.xs[1] + a;
                    return a;
                }
            }
            task startup(StartupObject s in initialstate) {
                C c = new C();
                int r = c.m(9, 1.5);
                taskexit(s: initialstate := false);
            }
            "#,
        );
    }

    #[test]
    fn printed_source_recompiles() {
        let src = r#"
            class StartupObject { flag initialstate; }
            class W { flag ready; int v; W(int v) { this.v = v; } }
            task startup(StartupObject s in initialstate) {
                W w = new W(3){ ready := true };
                taskexit(s: initialstate := false);
            }
            task run(W w in ready) { w.v = w.v * 2; taskexit(w: ready := false); }
        "#;
        let unit = parse(lex(src).expect("lexes")).expect("parses");
        let printed = unit_to_source(&unit);
        let compiled = crate::compile_source("printed", &printed).expect("recompiles");
        assert_eq!(compiled.spec.tasks.len(), 2);
    }

    #[test]
    fn string_escapes_round_trip() {
        round_trip(
            r#"
            class StartupObject { flag initialstate; }
            task startup(StartupObject s in initialstate) {
                String x = "a\"b\\c\nd\te";
                println(x);
                taskexit(s: initialstate := false);
            }
            "#,
        );
    }
}
