//! Semantic types for the Bamboo DSL's imperative subset.

use crate::ids::ClassId;
use std::fmt;

/// A resolved type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer (`int`).
    Int,
    /// 64-bit float (`float`).
    Float,
    /// Boolean (`boolean`).
    Bool,
    /// Immutable string (`String`).
    Str,
    /// No value (`void`).
    Void,
    /// Reference to an instance of a class.
    Class(ClassId),
    /// Reference to an array.
    Array(Box<Type>),
    /// The type of the `null` literal, assignable to any reference type.
    Null,
}

impl Type {
    /// Returns whether a value of `self` can be assigned to a location of
    /// type `target`.
    ///
    /// The subset has no subtyping or implicit numeric conversion; only
    /// `null` is assignable to reference types.
    pub fn assignable_to(&self, target: &Type) -> bool {
        if self == target {
            return true;
        }
        matches!(
            (self, target),
            (Type::Null, Type::Class(_)) | (Type::Null, Type::Array(_)) | (Type::Null, Type::Str)
        )
    }

    /// Returns whether this is a reference type (class, array, string, or
    /// null).
    pub fn is_reference(&self) -> bool {
        matches!(
            self,
            Type::Class(_) | Type::Array(_) | Type::Str | Type::Null
        )
    }

    /// Returns whether this is `int` or `float`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Float)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Bool => write!(f, "boolean"),
            Type::Str => write!(f, "String"),
            Type::Void => write!(f, "void"),
            Type::Class(id) => write!(f, "{id}"),
            Type::Array(elem) => write!(f, "{elem}[]"),
            Type::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_assignable_to_references_only() {
        assert!(Type::Null.assignable_to(&Type::Class(ClassId::new(0))));
        assert!(Type::Null.assignable_to(&Type::Array(Box::new(Type::Int))));
        assert!(Type::Null.assignable_to(&Type::Str));
        assert!(!Type::Null.assignable_to(&Type::Int));
    }

    #[test]
    fn no_implicit_numeric_conversion() {
        assert!(!Type::Int.assignable_to(&Type::Float));
        assert!(Type::Int.assignable_to(&Type::Int));
    }

    #[test]
    fn display_nested_array() {
        let t = Type::Array(Box::new(Type::Array(Box::new(Type::Float))));
        assert_eq!(t.to_string(), "float[][]");
    }
}
