#![warn(missing_docs)]

//! # bamboo-lang
//!
//! Frontend and program model for the Bamboo language — the data-centric,
//! object-oriented extension of Java introduced by Zhou & Demsky (PLDI
//! 2010).
//!
//! Bamboo programs are collections of *tasks*. Objects carry *flags*
//! (abstract states) and *tags*; each task declares parameter guards over
//! those flags, and the runtime invokes a task whenever the heap contains
//! objects whose abstract states satisfy the guards. Tasks transition
//! objects between abstract states at `taskexit` and allocate new objects
//! directly into abstract states.
//!
//! This crate provides:
//!
//! - [`spec`] — the declarative program model ([`spec::ProgramSpec`])
//!   consumed by the analyses, the implementation synthesizer, and the
//!   runtime;
//! - [`builder`] — a native Rust API for assembling programs (the analog of
//!   the paper's generated C code);
//! - a complete DSL frontend — [`lexer`], [`parser`], [`resolve`] — for the
//!   paper's Figure-5 task grammar over a Java-like imperative subset;
//! - [`ir`] and [`interp`] — a tree IR for task/method bodies and a
//!   reference interpreter used by the sequential executor and the
//!   disjointness analysis.
//!
//! # Examples
//!
//! Compile a two-task program in the style of §2 of the paper:
//!
//! ```
//! let source = r#"
//!     class StartupObject { flag initialstate; }
//!     class Text {
//!         flag process; flag submit;
//!         int count;
//!         Text(int n) { this.count = n; }
//!     }
//!     task startup(StartupObject s in initialstate) {
//!         Text t = new Text(4){ process := true };
//!         taskexit(s: initialstate := false);
//!     }
//!     task processText(Text t in process) {
//!         t.count = t.count * 2;
//!         taskexit(t: process := false, submit := true);
//!     }
//! "#;
//! let compiled = bamboo_lang::compile_source("kc", source)?;
//! assert_eq!(compiled.spec.tasks.len(), 2);
//! # Ok::<(), bamboo_lang::span::CompileError>(())
//! ```

pub mod ast;
pub mod builder;
pub mod ids;
pub mod interp;
pub mod ir;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod resolve;
pub mod span;
pub mod spec;
pub mod token;
pub mod types;

use span::CompileError;
use spec::ProgramSpec;

/// A compiled DSL program: the spec plus the IR bodies of its tasks and
/// methods.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The declarative program model.
    pub spec: ProgramSpec,
    /// The imperative bodies (tasks, methods, constructors) and class
    /// layouts.
    pub ir: ir::IrProgram,
}

/// Compiles Bamboo DSL source into a [`CompiledProgram`].
///
/// `name` is used for diagnostics and profile labeling only.
///
/// # Errors
///
/// Returns every lexical, syntactic, and semantic diagnostic found.
pub fn compile_source(name: &str, source: &str) -> Result<CompiledProgram, CompileError> {
    let tokens = lexer::lex(source).map_err(CompileError::single)?;
    let (unit, parse_diags) = parser::parse_recovering(tokens);
    if !parse_diags.is_empty() {
        return Err(CompileError::from_list(parse_diags));
    }
    resolve::resolve(name, &unit)
}
