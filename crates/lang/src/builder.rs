//! Native program construction API.
//!
//! The paper's compiler translates Bamboo source into C; this repository's
//! analog lets benchmarks assemble a [`ProgramSpec`] directly in Rust and
//! attach native task bodies (the stand-in for generated code). The builder
//! is generic over the body type `B`, so this crate stays independent of
//! the runtime's closure signature.
//!
//! # Examples
//!
//! ```
//! use bamboo_lang::builder::ProgramBuilder;
//! use bamboo_lang::spec::FlagExpr;
//!
//! let mut b: ProgramBuilder<&'static str> = ProgramBuilder::new("demo");
//! let startup = b.class("StartupObject", &["initialstate"]);
//! let work = b.class("Work", &["ready", "done"]);
//! let initial = b.flag(startup, "initialstate");
//! let ready = b.flag(work, "ready");
//! let done = b.flag(work, "done");
//!
//! b.task("startup")
//!     .param("s", startup, FlagExpr::flag(initial))
//!     .alloc(work, &[(ready, true)], &[])
//!     .exit("spawned", |e| e.set(0, initial, false))
//!     .body("startup body")
//!     .finish();
//! b.task("work")
//!     .param("w", work, FlagExpr::flag(ready).and(FlagExpr::flag(done).not()))
//!     .exit("finished", |e| e.set(0, ready, false).set(0, done, true))
//!     .body("work body")
//!     .finish();
//!
//! let built = b.build()?;
//! assert_eq!(built.spec.tasks.len(), 2);
//! assert_eq!(built.bodies.len(), 2);
//! # Ok::<(), bamboo_lang::builder::BuildError>(())
//! ```

use crate::ids::{ClassId, FlagId, ParamIdx, TagTypeId, TagVarId, TaskId};
use crate::spec::{
    AllocSiteSpec, ClassSpec, ExitSpec, FlagExpr, FlagOrTagAction, ParamSpec, ProgramSpec,
    StartupSpec, TagConstraint, TagTypeSpec, TagVarSpec, TaskSpec,
};
use std::error::Error;
use std::fmt;

/// Error returned by [`ProgramBuilder::build`] when the assembled spec is
/// inconsistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildError {
    /// The problems found, in detection order. Never empty.
    pub problems: Vec<String>,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid program spec: {}", self.problems.join("; "))
    }
}

impl Error for BuildError {}

/// A finished program: the spec plus one body per task (indexed by
/// [`TaskId`]).
#[derive(Debug)]
pub struct BuiltProgram<B> {
    /// The declarative program model.
    pub spec: ProgramSpec,
    /// Task bodies, parallel to `spec.tasks`.
    pub bodies: Vec<B>,
}

/// Incrementally assembles a [`ProgramSpec`] and its task bodies.
#[derive(Debug)]
pub struct ProgramBuilder<B> {
    name: String,
    classes: Vec<ClassSpec>,
    tag_types: Vec<TagTypeSpec>,
    tasks: Vec<TaskSpec>,
    bodies: Vec<Option<B>>,
    startup: Option<StartupSpec>,
    problems: Vec<String>,
}

impl<B> ProgramBuilder<B> {
    /// Creates a builder for a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            classes: Vec::new(),
            tag_types: Vec::new(),
            tasks: Vec::new(),
            bodies: Vec::new(),
            startup: None,
            problems: Vec::new(),
        }
    }

    /// Declares a class with the given flags and returns its id.
    pub fn class(&mut self, name: &str, flags: &[&str]) -> ClassId {
        let id = ClassId::new(self.classes.len());
        self.classes.push(ClassSpec {
            name: name.to_string(),
            flags: flags.iter().map(|f| f.to_string()).collect(),
        });
        if name == "StartupObject" {
            if let Some(flag) = self.classes[id.index()].flag_by_name("initialstate") {
                self.startup = Some(StartupSpec { class: id, flag });
            }
        }
        id
    }

    /// Declares a tag type and returns its id.
    pub fn tag_type(&mut self, name: &str) -> TagTypeId {
        let id = TagTypeId::new(self.tag_types.len());
        self.tag_types.push(TagTypeSpec {
            name: name.to_string(),
        });
        id
    }

    /// Looks up a flag of `class` by name.
    ///
    /// # Panics
    ///
    /// Panics if the class or flag does not exist — builder misuse is a
    /// programming error, not a recoverable condition.
    pub fn flag(&self, class: ClassId, name: &str) -> FlagId {
        self.classes[class.index()]
            .flag_by_name(name)
            .unwrap_or_else(|| panic!("class has no flag `{name}`"))
    }

    /// Overrides the startup class/flag detected from naming conventions.
    pub fn startup(&mut self, class: ClassId, flag: FlagId) -> &mut Self {
        self.startup = Some(StartupSpec { class, flag });
        self
    }

    /// Starts declaring a task. Finish with [`TaskBuilder::finish`].
    pub fn task(&mut self, name: &str) -> TaskBuilder<'_, B> {
        TaskBuilder {
            parent: self,
            spec: TaskSpec {
                name: name.to_string(),
                params: Vec::new(),
                exits: Vec::new(),
                alloc_sites: Vec::new(),
                tag_vars: Vec::new(),
            },
            body: None,
        }
    }

    /// Finalizes the program, validating the spec.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if any task lacks a body, the startup class is
    /// missing, or [`ProgramSpec::validate`] reports problems.
    pub fn build(self) -> Result<BuiltProgram<B>, BuildError> {
        let mut problems = self.problems;
        let startup = match self.startup {
            Some(s) => s,
            None => {
                problems.push(
                    "no startup class: declare `StartupObject` with flag `initialstate` or call `startup()`"
                        .to_string(),
                );
                StartupSpec {
                    class: ClassId::new(0),
                    flag: FlagId::new(0),
                }
            }
        };
        let spec = ProgramSpec {
            name: self.name,
            classes: self.classes,
            tag_types: self.tag_types,
            tasks: self.tasks,
            startup,
        };
        let mut bodies = Vec::with_capacity(self.bodies.len());
        for (i, body) in self.bodies.into_iter().enumerate() {
            match body {
                Some(b) => bodies.push(b),
                None => problems.push(format!("task `{}` has no body", spec.tasks[i].name)),
            }
        }
        problems.extend(spec.validate());
        if problems.is_empty() {
            Ok(BuiltProgram { spec, bodies })
        } else {
            Err(BuildError { problems })
        }
    }
}

/// Collects the flag/tag actions of one task exit.
#[derive(Debug, Default)]
pub struct ExitBuilder {
    actions: Vec<(ParamIdx, Vec<FlagOrTagAction>)>,
}

impl ExitBuilder {
    fn push(&mut self, param: usize, action: FlagOrTagAction) {
        let idx = ParamIdx::new(param);
        if let Some((_, list)) = self.actions.iter_mut().find(|(p, _)| *p == idx) {
            list.push(action);
        } else {
            self.actions.push((idx, vec![action]));
        }
    }

    /// Declares `param: flag := value`.
    pub fn set(mut self, param: usize, flag: FlagId, value: bool) -> Self {
        self.push(param, FlagOrTagAction::SetFlag(flag, value));
        self
    }

    /// Declares `param: add var`.
    pub fn add_tag(mut self, param: usize, var: TagVarId) -> Self {
        self.push(param, FlagOrTagAction::AddTag(var));
        self
    }

    /// Declares `param: clear var`.
    pub fn clear_tag(mut self, param: usize, var: TagVarId) -> Self {
        self.push(param, FlagOrTagAction::ClearTag(var));
        self
    }
}

/// Assembles one task declaration; created by [`ProgramBuilder::task`].
#[derive(Debug)]
pub struct TaskBuilder<'a, B> {
    parent: &'a mut ProgramBuilder<B>,
    spec: TaskSpec,
    body: Option<B>,
}

impl<B> TaskBuilder<'_, B> {
    /// Declares a parameter: `class name in guard`.
    pub fn param(mut self, name: &str, class: ClassId, guard: FlagExpr) -> Self {
        self.spec.params.push(ParamSpec {
            name: name.to_string(),
            class,
            guard,
            tags: Vec::new(),
        });
        self
    }

    /// Adds a `with tagtype var` constraint to the most recent parameter.
    ///
    /// The named tag variable is created on first use; parameters naming the
    /// same variable must match the same tag instance.
    ///
    /// # Panics
    ///
    /// Panics if called before any `param`.
    pub fn with_tag(mut self, tag_type: TagTypeId, var_name: &str) -> Self {
        let var = self.intern_tag_var(var_name, tag_type, true);
        let param = self
            .spec
            .params
            .last_mut()
            .expect("with_tag requires a preceding param");
        param.tags.push(TagConstraint { tag_type, var });
        self
    }

    /// Declares a tag variable bound by `new tag(tagtype)` in the body.
    pub fn new_tag_var(mut self, tag_type: TagTypeId, var_name: &str) -> Self {
        self.intern_tag_var(var_name, tag_type, false);
        self
    }

    /// Returns the id of a previously declared tag variable.
    ///
    /// # Panics
    ///
    /// Panics if no tag variable with that name exists yet.
    pub fn tag_var(&self, var_name: &str) -> TagVarId {
        self.spec
            .tag_vars
            .iter()
            .position(|v| v.name == var_name)
            .map(TagVarId::new)
            .unwrap_or_else(|| panic!("no tag variable `{var_name}` declared"))
    }

    fn intern_tag_var(&mut self, name: &str, tag_type: TagTypeId, from_param: bool) -> TagVarId {
        if let Some(pos) = self.spec.tag_vars.iter().position(|v| v.name == name) {
            return TagVarId::new(pos);
        }
        let id = TagVarId::new(self.spec.tag_vars.len());
        self.spec.tag_vars.push(TagVarSpec {
            name: name.to_string(),
            tag_type,
            from_param,
        });
        id
    }

    /// Declares an allocation site: `new class { flags..., add tags... }`.
    ///
    /// Sites are numbered in declaration order; bodies refer to them by that
    /// index when creating objects.
    pub fn alloc(mut self, class: ClassId, flags: &[(FlagId, bool)], tags: &[TagVarId]) -> Self {
        self.spec.alloc_sites.push(AllocSiteSpec {
            class,
            initial_flags: flags.to_vec(),
            bound_tags: tags.to_vec(),
        });
        self
    }

    /// Declares an exit point; `build` configures its actions.
    ///
    /// Exits are numbered in declaration order; bodies select an exit by
    /// that index when returning.
    pub fn exit(mut self, label: &str, build: impl FnOnce(ExitBuilder) -> ExitBuilder) -> Self {
        let eb = build(ExitBuilder::default());
        self.spec.exits.push(ExitSpec {
            label: label.to_string(),
            actions: eb.actions,
        });
        self
    }

    /// Attaches the task body.
    pub fn body(mut self, body: B) -> Self {
        self.body = Some(body);
        self
    }

    /// Registers the task with the program and returns its id.
    pub fn finish(self) -> TaskId {
        let id = TaskId::new(self.parent.tasks.len());
        if self.spec.exits.is_empty() {
            self.parent
                .problems
                .push(format!("task `{}` declares no exits", self.spec.name));
        }
        self.parent.tasks.push(self.spec);
        self.parent.bodies.push(self.body);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_task_builder() -> ProgramBuilder<u32> {
        let mut b: ProgramBuilder<u32> = ProgramBuilder::new("t");
        let s = b.class("StartupObject", &["initialstate"]);
        let w = b.class("Work", &["ready"]);
        let init = b.flag(s, "initialstate");
        let ready = b.flag(w, "ready");
        b.task("startup")
            .param("s", s, FlagExpr::flag(init))
            .alloc(w, &[(ready, true)], &[])
            .exit("", |e| e.set(0, init, false))
            .body(0)
            .finish();
        b.task("work")
            .param("w", w, FlagExpr::flag(ready))
            .exit("", |e| e.set(0, ready, false))
            .body(1)
            .finish();
        b
    }

    #[test]
    fn builds_valid_program() {
        let built = two_task_builder().build().unwrap();
        assert_eq!(built.spec.tasks.len(), 2);
        assert_eq!(built.bodies, vec![0, 1]);
        assert_eq!(built.spec.startup.class, ClassId::new(0));
    }

    #[test]
    fn startup_class_is_autodetected() {
        let b = two_task_builder();
        let built = b.build().unwrap();
        assert_eq!(
            built.spec.class(built.spec.startup.class).name,
            "StartupObject"
        );
    }

    #[test]
    fn missing_body_is_an_error() {
        let mut b: ProgramBuilder<u32> = ProgramBuilder::new("t");
        let s = b.class("StartupObject", &["initialstate"]);
        let init = b.flag(s, "initialstate");
        b.task("startup")
            .param("s", s, FlagExpr::flag(init))
            .exit("", |e| e.set(0, init, false))
            .finish();
        let err = b.build().unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("no body")));
    }

    #[test]
    fn missing_exit_is_an_error() {
        let mut b: ProgramBuilder<u32> = ProgramBuilder::new("t");
        let s = b.class("StartupObject", &["initialstate"]);
        let init = b.flag(s, "initialstate");
        b.task("startup")
            .param("s", s, FlagExpr::flag(init))
            .body(0)
            .finish();
        let err = b.build().unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("no exits")));
    }

    #[test]
    fn tag_variables_are_shared_across_params() {
        let mut b: ProgramBuilder<u32> = ProgramBuilder::new("t");
        let s = b.class("StartupObject", &["initialstate"]);
        let init = b.flag(s, "initialstate");
        let d = b.class("Drawing", &["saving"]);
        let i = b.class("Image", &["compressed"]);
        let saving = b.flag(d, "saving");
        let compressed = b.flag(i, "compressed");
        let link = b.tag_type("link");
        b.task("startup")
            .param("s", s, FlagExpr::flag(init))
            .exit("", |e| e.set(0, init, false))
            .body(0)
            .finish();
        let t = b
            .task("finishsave")
            .param("d", d, FlagExpr::flag(saving))
            .with_tag(link, "t")
            .param("i", i, FlagExpr::flag(compressed))
            .with_tag(link, "t")
            .exit("", |e| e.set(0, saving, false))
            .body(1)
            .finish();
        let built = b.build().unwrap();
        let task = built.spec.task(t);
        assert_eq!(task.tag_vars.len(), 1);
        assert_eq!(task.params[0].tags[0].var, task.params[1].tags[0].var);
        assert!(task.all_params_share_tag());
    }

    #[test]
    #[should_panic(expected = "no flag")]
    fn unknown_flag_lookup_panics() {
        let mut b: ProgramBuilder<u32> = ProgramBuilder::new("t");
        let c = b.class("C", &["a"]);
        b.flag(c, "missing");
    }
}
