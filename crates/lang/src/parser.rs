//! Recursive-descent parser for the Bamboo DSL.
//!
//! Implements the task grammar of the paper's Figure 5 (tasks, guards,
//! `taskexit`, tags, stateful `new`) over a Java-like imperative subset
//! (classes, fields, methods, constructors, the usual statements and
//! expressions).

use crate::ast::*;
use crate::span::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// Parses a token stream (as produced by [`crate::lexer::lex`]) into a
/// [`Unit`].
///
/// # Errors
///
/// Returns a diagnostic describing the first syntax error encountered.
/// Use [`parse_recovering`] to collect multiple errors.
pub fn parse(tokens: Vec<Token>) -> Result<Unit, Diagnostic> {
    let (unit, mut diags) = parse_recovering(tokens);
    match diags.is_empty() {
        true => Ok(unit),
        false => Err(diags.remove(0)),
    }
}

/// Parses with error recovery: on a syntax error inside a statement the
/// parser records the diagnostic and skips to the next statement
/// boundary (`;` or `}`); on an error in a top-level declaration it skips
/// to the next `class`/`tagtype`/`task` keyword. Returns everything it
/// managed to parse plus all diagnostics, so one compile reports many
/// errors.
pub fn parse_recovering(tokens: Vec<Token>) -> (Unit, Vec<Diagnostic>) {
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: Vec::new(),
    };
    let unit = parser.unit_recovering();
    (unit, parser.diags)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Vec<Diagnostic>,
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Span> {
        if self.peek() == &kind {
            let span = self.span();
            self.bump();
            Ok(span)
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> PResult<(String, Span)> {
        let span = self.span();
        match self.bump() {
            TokenKind::Ident(name) => Ok((name, span)),
            other => Err(Diagnostic::new(
                span,
                format!("expected {what}, found {other}"),
            )),
        }
    }

    fn error(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(self.span(), msg)
    }

    /// Skips tokens until just past the next statement boundary: a `;`
    /// (consumed) or a `}` (left in place for the enclosing block).
    fn synchronize_statement(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Skips tokens until the next top-level declaration keyword.
    fn synchronize_top_level(&mut self) {
        loop {
            match self.peek() {
                TokenKind::Eof | TokenKind::Class | TokenKind::TagType | TokenKind::Task => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- declarations -------------------------------------------------

    fn unit_recovering(&mut self) -> Unit {
        let mut unit = Unit::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Class => match self.class_decl() {
                    Ok(class) => unit.classes.push(class),
                    Err(diag) => {
                        self.diags.push(diag);
                        self.synchronize_top_level();
                    }
                },
                TokenKind::TagType => match self.tag_type_decl() {
                    Ok(tt) => unit.tag_types.push(tt),
                    Err(diag) => {
                        self.diags.push(diag);
                        self.synchronize_top_level();
                    }
                },
                TokenKind::Task => match self.task_decl() {
                    Ok(task) => unit.tasks.push(task),
                    Err(diag) => {
                        self.diags.push(diag);
                        self.synchronize_top_level();
                    }
                },
                other => {
                    self.diags.push(self.error(format!(
                        "expected `class`, `tagtype`, or `task` at top level, found {other}"
                    )));
                    self.bump();
                    self.synchronize_top_level();
                }
            }
        }
        unit
    }

    fn tag_type_decl(&mut self) -> PResult<TagTypeDecl> {
        let start = self.expect(TokenKind::TagType)?;
        let (name, _) = self.expect_ident("tag type name")?;
        self.expect(TokenKind::Semi)?;
        Ok(TagTypeDecl { name, span: start })
    }

    fn class_decl(&mut self) -> PResult<ClassDecl> {
        let start = self.expect(TokenKind::Class)?;
        let (name, _) = self.expect_ident("class name")?;
        self.expect(TokenKind::LBrace)?;
        let mut decl = ClassDecl {
            name: name.clone(),
            flags: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
            span: start,
        };
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Flag {
                self.bump();
                let (fname, fspan) = self.expect_ident("flag name")?;
                self.expect(TokenKind::Semi)?;
                decl.flags.push((fname, fspan));
                continue;
            }
            // Constructor: `ClassName (` .
            if let TokenKind::Ident(id) = self.peek() {
                if id == &name && self.peek_at(1) == &TokenKind::LParen {
                    let span = self.span();
                    self.bump();
                    let params = self.method_params()?;
                    let body = self.block()?;
                    decl.methods.push(MethodDecl {
                        ret: TypeExpr::Void,
                        name: name.clone(),
                        params,
                        body,
                        is_ctor: true,
                        span,
                    });
                    continue;
                }
            }
            // Field or method: `type name ;` vs `type name (`.
            let ty = self.type_expr()?;
            let (mname, mspan) = self.expect_ident("member name")?;
            if self.peek() == &TokenKind::LParen {
                let params = self.method_params()?;
                let body = self.block()?;
                decl.methods.push(MethodDecl {
                    ret: ty,
                    name: mname,
                    params,
                    body,
                    is_ctor: false,
                    span: mspan,
                });
            } else {
                self.expect(TokenKind::Semi)?;
                decl.fields.push(FieldDecl {
                    ty,
                    name: mname,
                    span: mspan,
                });
            }
        }
        Ok(decl)
    }

    fn method_params(&mut self) -> PResult<Vec<(TypeExpr, String)>> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let ty = self.type_expr()?;
                let (name, _) = self.expect_ident("parameter name")?;
                params.push((ty, name));
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Comma)?;
            }
        }
        Ok(params)
    }

    fn type_expr(&mut self) -> PResult<TypeExpr> {
        let mut ty = match self.bump() {
            TokenKind::KwInt => TypeExpr::Int,
            TokenKind::KwFloat => TypeExpr::Float,
            TokenKind::KwBoolean => TypeExpr::Bool,
            TokenKind::KwString => TypeExpr::Str,
            TokenKind::KwVoid => TypeExpr::Void,
            TokenKind::Ident(name) => TypeExpr::Named(name),
            other => {
                return Err(Diagnostic::new(
                    self.prev_span(),
                    format!("expected type, found {other}"),
                ))
            }
        };
        while self.peek() == &TokenKind::LBracket && self.peek_at(1) == &TokenKind::RBracket {
            self.bump();
            self.bump();
            ty = TypeExpr::Array(Box::new(ty));
        }
        Ok(ty)
    }

    fn task_decl(&mut self) -> PResult<TaskDecl> {
        let start = self.expect(TokenKind::Task)?;
        let (name, _) = self.expect_ident("task name")?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.task_param()?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(TaskDecl {
            name,
            params,
            body,
            span: start,
        })
    }

    fn task_param(&mut self) -> PResult<TaskParamDecl> {
        let (class, span) = self.expect_ident("parameter class name")?;
        let (name, _) = self.expect_ident("parameter name")?;
        self.expect(TokenKind::In)?;
        let guard = self.flag_or_expr()?;
        let mut tags = Vec::new();
        if self.eat(&TokenKind::With) {
            loop {
                let (tag_type, _) = self.expect_ident("tag type")?;
                let (tag_var, _) = self.expect_ident("tag variable")?;
                tags.push((tag_type, tag_var));
                if !self.eat(&TokenKind::And) {
                    break;
                }
            }
        }
        Ok(TaskParamDecl {
            class,
            name,
            guard,
            tags,
            span,
        })
    }

    // flagexp := and-level (or and-level)*
    fn flag_or_expr(&mut self) -> PResult<FlagExprAst> {
        let mut lhs = self.flag_and_expr()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.flag_and_expr()?;
            lhs = FlagExprAst::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn flag_and_expr(&mut self) -> PResult<FlagExprAst> {
        let mut lhs = self.flag_unary_expr()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.flag_unary_expr()?;
            lhs = FlagExprAst::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn flag_unary_expr(&mut self) -> PResult<FlagExprAst> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Bang => {
                self.bump();
                Ok(FlagExprAst::Not(Box::new(self.flag_unary_expr()?)))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.flag_or_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::True => {
                self.bump();
                Ok(FlagExprAst::Const(true, span))
            }
            TokenKind::False => {
                self.bump();
                Ok(FlagExprAst::Const(false, span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(FlagExprAst::Flag(name, span))
            }
            other => Err(self.error(format!("expected flag expression, found {other}"))),
        }
    }

    // ---- statements ---------------------------------------------------

    fn block(&mut self) -> PResult<Block> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return Err(self.error("unexpected end of input inside a block"));
            }
            match self.stmt() {
                Ok(stmt) => stmts.push(stmt),
                Err(diag) => {
                    // Record and resynchronize at the next statement.
                    self.diags.push(diag);
                    self.synchronize_statement();
                }
            }
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let span = self.span();
        match self.peek() {
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::For => self.for_stmt(),
            TokenKind::Return => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::Break => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Break(span))
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Continue(span))
            }
            TokenKind::TaskExit => self.taskexit_stmt(),
            TokenKind::Tag => self.new_tag_stmt(),
            _ => {
                let stmt = self.simple_stmt()?;
                self.expect(TokenKind::Semi)?;
                Ok(stmt)
            }
        }
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        let span = self.expect(TokenKind::If)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_blk = self.branch_body()?;
        let else_blk = if self.eat(&TokenKind::Else) {
            if self.peek() == &TokenKind::If {
                let nested = self.if_stmt()?;
                Some(Block {
                    stmts: vec![nested],
                })
            } else {
                Some(self.branch_body()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
            span,
        })
    }

    /// A branch body: either a block or a single statement.
    fn branch_body(&mut self) -> PResult<Block> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            let stmt = self.stmt()?;
            Ok(Block { stmts: vec![stmt] })
        }
    }

    fn for_stmt(&mut self) -> PResult<Stmt> {
        let span = self.expect(TokenKind::For)?;
        self.expect(TokenKind::LParen)?;
        let init = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(TokenKind::Semi)?;
        let cond = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        })
    }

    fn taskexit_stmt(&mut self) -> PResult<Stmt> {
        let span = self.expect(TokenKind::TaskExit)?;
        self.expect(TokenKind::LParen)?;
        let mut actions = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let (param, _) = self.expect_ident("parameter name")?;
                self.expect(TokenKind::Colon)?;
                let mut list = Vec::new();
                loop {
                    list.push(self.flag_or_tag_action()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                actions.push((param, list));
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Semi)?;
            }
        }
        self.expect(TokenKind::Semi)?;
        Ok(Stmt::TaskExit { actions, span })
    }

    fn flag_or_tag_action(&mut self) -> PResult<FlagOrTagActionAst> {
        let span = self.span();
        match self.bump() {
            TokenKind::Add => {
                let (var, _) = self.expect_ident("tag variable")?;
                Ok(FlagOrTagActionAst::AddTag(var, span))
            }
            TokenKind::Clear => {
                let (var, _) = self.expect_ident("tag variable")?;
                Ok(FlagOrTagActionAst::ClearTag(var, span))
            }
            TokenKind::Ident(flag) => {
                self.expect(TokenKind::ColonEq)?;
                let value = match self.bump() {
                    TokenKind::True => true,
                    TokenKind::False => false,
                    other => {
                        return Err(Diagnostic::new(
                            self.prev_span(),
                            format!("expected `true` or `false`, found {other}"),
                        ))
                    }
                };
                Ok(FlagOrTagActionAst::SetFlag(flag, value, span))
            }
            other => Err(Diagnostic::new(
                span,
                format!("expected flag assignment or tag action, found {other}"),
            )),
        }
    }

    fn new_tag_stmt(&mut self) -> PResult<Stmt> {
        let span = self.expect(TokenKind::Tag)?;
        let (var, _) = self.expect_ident("tag variable name")?;
        self.expect(TokenKind::Eq)?;
        self.expect(TokenKind::New)?;
        self.expect(TokenKind::Tag)?;
        self.expect(TokenKind::LParen)?;
        let (tag_type, _) = self.expect_ident("tag type")?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Semi)?;
        Ok(Stmt::NewTag {
            var,
            tag_type,
            span,
        })
    }

    /// A statement without its trailing `;`: local declaration, assignment,
    /// or expression.
    fn simple_stmt(&mut self) -> PResult<Stmt> {
        let span = self.span();
        if self.starts_local_decl() {
            let ty = self.type_expr()?;
            let (name, _) = self.expect_ident("variable name")?;
            let init = if self.eat(&TokenKind::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Local {
                ty,
                name,
                init,
                span,
            });
        }
        let lhs = self.expr()?;
        if self.eat(&TokenKind::Eq) {
            let rhs = self.expr()?;
            Ok(Stmt::Assign { lhs, rhs, span })
        } else {
            Ok(Stmt::Expr(lhs))
        }
    }

    /// Lookahead: does the upcoming input start a local variable
    /// declaration (`type name ...`)?
    fn starts_local_decl(&self) -> bool {
        let mut off = match self.peek() {
            TokenKind::KwInt | TokenKind::KwFloat | TokenKind::KwBoolean | TokenKind::KwString => 1,
            TokenKind::Ident(_) => 1,
            _ => return false,
        };
        // Skip `[]` pairs belonging to an array type.
        while self.peek_at(off) == &TokenKind::LBracket
            && self.peek_at(off + 1) == &TokenKind::RBracket
        {
            off += 2;
        }
        matches!(self.peek_at(off), TokenKind::Ident(_))
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn binary_level(
        &mut self,
        next: fn(&mut Self) -> PResult<Expr>,
        ops: &[(TokenKind, BinOp)],
    ) -> PResult<Expr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.peek() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span().to(rhs.span());
                    lhs = Expr::Binary {
                        op: *op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        span,
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        self.binary_level(Self::and_expr, &[(TokenKind::PipePipe, BinOp::Or)])
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        self.binary_level(Self::equality_expr, &[(TokenKind::AmpAmp, BinOp::And)])
    }

    fn equality_expr(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::relational_expr,
            &[(TokenKind::EqEq, BinOp::Eq), (TokenKind::NotEq, BinOp::Ne)],
        )
    }

    fn relational_expr(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::additive_expr,
            &[
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Ge, BinOp::Ge),
                (TokenKind::Gt, BinOp::Gt),
            ],
        )
    }

    fn additive_expr(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::term_expr,
            &[
                (TokenKind::Plus, BinOp::Add),
                (TokenKind::Minus, BinOp::Sub),
            ],
        )
    }

    fn term_expr(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::unary_expr,
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        let span = self.span();
        match self.peek() {
            TokenKind::Bang => {
                self.bump();
                let expr = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(expr),
                    span,
                })
            }
            TokenKind::Minus => {
                self.bump();
                let expr = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(expr),
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut expr = self.primary_expr()?;
        loop {
            let span = self.span();
            if self.eat(&TokenKind::Dot) {
                let (name, _) = self.expect_ident("member name")?;
                if self.peek() == &TokenKind::LParen {
                    let args = self.call_args()?;
                    expr = Expr::Call {
                        recv: Some(Box::new(expr)),
                        name,
                        args,
                        span,
                    };
                } else {
                    expr = Expr::Field {
                        obj: Box::new(expr),
                        name,
                        span,
                    };
                }
            } else if self.eat(&TokenKind::LBracket) {
                let idx = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                expr = Expr::Index {
                    arr: Box::new(expr),
                    idx: Box::new(idx),
                    span,
                };
            } else {
                return Ok(expr);
            }
        }
    }

    fn call_args(&mut self) -> PResult<Vec<Expr>> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Comma)?;
            }
        }
        Ok(args)
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let span = self.span();
        // Peek before consuming: on error the offending token stays put,
        // so statement-level recovery resynchronizes at the right place.
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::IntLit(v, span))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::FloatLit(v, span))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::BoolLit(true, span))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::BoolLit(false, span))
            }
            TokenKind::StrLit(s) => {
                self.bump();
                Ok(Expr::StrLit(s, span))
            }
            TokenKind::This => {
                self.bump();
                Ok(Expr::This(span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::New => {
                self.bump();
                self.new_expr(span)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek() == &TokenKind::LParen {
                    let args = self.call_args()?;
                    Ok(Expr::Call {
                        recv: None,
                        name,
                        args,
                        span,
                    })
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            other => Err(Diagnostic::new(
                span,
                format!("expected expression, found {other}"),
            )),
        }
    }

    fn new_expr(&mut self, span: Span) -> PResult<Expr> {
        // Base type.
        let base = match self.bump() {
            TokenKind::KwInt => TypeExpr::Int,
            TokenKind::KwFloat => TypeExpr::Float,
            TokenKind::KwBoolean => TypeExpr::Bool,
            TokenKind::KwString => TypeExpr::Str,
            TokenKind::Ident(name) => TypeExpr::Named(name),
            other => {
                return Err(Diagnostic::new(
                    self.prev_span(),
                    format!("expected type after `new`, found {other}"),
                ))
            }
        };
        // `[]` pairs extend the element type; `[len]` ends an array
        // allocation.
        let mut elem = base;
        while self.peek() == &TokenKind::LBracket {
            if self.peek_at(1) == &TokenKind::RBracket {
                self.bump();
                self.bump();
                elem = TypeExpr::Array(Box::new(elem));
            } else {
                self.bump();
                let len = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                return Ok(Expr::NewArray {
                    elem,
                    len: Box::new(len),
                    span,
                });
            }
        }
        let class = match elem {
            TypeExpr::Named(name) => name,
            other => {
                return Err(Diagnostic::new(
                    span,
                    format!("cannot instantiate non-class type {other:?} with `new`"),
                ))
            }
        };
        let args = self.call_args()?;
        let mut state = Vec::new();
        if self.eat(&TokenKind::LBrace) && !self.eat(&TokenKind::RBrace) {
            loop {
                state.push(self.flag_or_tag_action()?);
                if self.eat(&TokenKind::RBrace) {
                    break;
                }
                self.expect(TokenKind::Comma)?;
            }
        }
        Ok(Expr::New {
            class,
            args,
            state,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_class_with_flags_fields_methods() {
        let unit = parse_src(
            r#"class Text {
                flag process;
                flag submit;
                int count;
                String data;
                Text(String d) { this.data = d; }
                int size() { return this.count; }
            }"#,
        );
        let class = &unit.classes[0];
        assert_eq!(class.name, "Text");
        assert_eq!(class.flags.len(), 2);
        assert_eq!(class.fields.len(), 2);
        assert_eq!(class.methods.len(), 2);
        assert!(class.methods[0].is_ctor);
        assert!(!class.methods[1].is_ctor);
    }

    #[test]
    fn parses_task_with_guard_and_taskexit() {
        let unit = parse_src(
            r#"task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
                taskexit(rp: finished := true; tp: submit := false);
            }"#,
        );
        let task = &unit.tasks[0];
        assert_eq!(task.params.len(), 2);
        assert!(matches!(task.params[0].guard, FlagExprAst::Not(_)));
        match &task.body.stmts[0] {
            Stmt::TaskExit { actions, .. } => {
                assert_eq!(actions.len(), 2);
                assert_eq!(actions[0].0, "rp");
            }
            other => panic!("expected taskexit, got {other:?}"),
        }
    }

    #[test]
    fn parses_with_tags() {
        let unit = parse_src(
            r#"task finishsave(Drawing d in saving with link t, Image i in compressed with link t) {
                taskexit(d: saving := false, clear t);
            }"#,
        );
        let task = &unit.tasks[0];
        assert_eq!(
            task.params[0].tags,
            vec![("link".to_string(), "t".to_string())]
        );
        assert_eq!(task.params[1].tags.len(), 1);
    }

    #[test]
    fn parses_new_with_state() {
        let unit = parse_src(
            r#"task t(A a in x) {
                B b = new B(1, 2){ ready := true, add tg };
                taskexit(a: x := false);
            }"#,
        );
        match &unit.tasks[0].body.stmts[0] {
            Stmt::Local {
                init: Some(Expr::New {
                    class, args, state, ..
                }),
                ..
            } => {
                assert_eq!(class, "B");
                assert_eq!(args.len(), 2);
                assert_eq!(state.len(), 2);
            }
            other => panic!("expected local with new, got {other:?}"),
        }
    }

    #[test]
    fn parses_new_tag_statement() {
        let unit = parse_src(
            r#"task t(A a in x) {
                tag tg = new tag(link);
                taskexit(a: x := false, add tg);
            }"#,
        );
        assert!(
            matches!(&unit.tasks[0].body.stmts[0], Stmt::NewTag { var, tag_type, .. }
            if var == "tg" && tag_type == "link")
        );
    }

    #[test]
    fn parses_control_flow() {
        let unit = parse_src(
            r#"task t(A a in x) {
                int total = 0;
                for (int i = 0; i < 10; i = i + 1) {
                    if (i % 2 == 0) { total = total + i; } else { total = total - 1; }
                }
                while (total > 0) { total = total - 3; break; }
                taskexit(a: x := false);
            }"#,
        );
        assert_eq!(unit.tasks[0].body.stmts.len(), 4);
    }

    #[test]
    fn parses_else_if_chain() {
        let unit = parse_src(
            r#"task t(A a in x) {
                int v = 0;
                if (v == 0) { v = 1; } else if (v == 1) { v = 2; } else { v = 3; }
                taskexit(a: x := false);
            }"#,
        );
        match &unit.tasks[0].body.stmts[1] {
            Stmt::If {
                else_blk: Some(b), ..
            } => {
                assert!(matches!(&b.stmts[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_array_types_and_allocation() {
        let unit = parse_src(
            r#"task t(A a in x) {
                float[] xs = new float[10];
                float[][] grid = new float[][4];
                grid[0] = xs;
                xs[1] = 2.5;
                taskexit(a: x := false);
            }"#,
        );
        assert_eq!(unit.tasks[0].body.stmts.len(), 5);
        match &unit.tasks[0].body.stmts[1] {
            Stmt::Local {
                ty: TypeExpr::Array(inner),
                init: Some(Expr::NewArray { elem, .. }),
                ..
            } => {
                assert!(matches!(**inner, TypeExpr::Array(_)));
                assert!(matches!(elem, TypeExpr::Array(_)));
            }
            other => panic!("expected array local, got {other:?}"),
        }
    }

    #[test]
    fn precedence_binds_mul_tighter() {
        let unit = parse_src(r#"task t(A a in x) { int v = 1 + 2 * 3; taskexit(a: x := false); }"#);
        match &unit.tasks[0].body.stmts[0] {
            Stmt::Local {
                init:
                    Some(Expr::Binary {
                        op: BinOp::Add,
                        rhs,
                        ..
                    }),
                ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn method_calls_and_builtins() {
        let unit = parse_src(
            r#"task t(A a in x) {
                a.compute(1, 2);
                print("hi");
                int n = len(a.items);
                taskexit(a: x := false);
            }"#,
        );
        assert!(matches!(
            &unit.tasks[0].body.stmts[0],
            Stmt::Expr(Expr::Call { recv: Some(_), .. })
        ));
        assert!(matches!(
            &unit.tasks[0].body.stmts[1],
            Stmt::Expr(Expr::Call { recv: None, .. })
        ));
    }

    #[test]
    fn guard_or_and_parens() {
        let unit = parse_src(r#"task t(A a in (p or q) and !r) { taskexit(a: p := false); }"#);
        assert!(matches!(
            unit.tasks[0].params[0].guard,
            FlagExprAst::And(..)
        ));
    }

    #[test]
    fn reports_syntax_error_with_location() {
        let err = parse(lex("class {").unwrap()).unwrap_err();
        assert!(err.message.contains("expected class name"));
    }

    #[test]
    fn empty_taskexit_allowed() {
        let unit = parse_src(r#"task t(A a in p) { taskexit(); }"#);
        match &unit.tasks[0].body.stmts[0] {
            Stmt::TaskExit { actions, .. } => assert!(actions.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn recovers_multiple_statement_errors_in_one_pass() {
        let src = r#"
            task t(A a in p) {
                int x = ;
                int y = 2;
                int z = @;
                taskexit(a: p := false);
            }
        "#;
        // `@` does not lex; use a parsable-but-wrong token instead.
        let src = src.replace('@', "taskexit");
        let (unit, diags) = parse_recovering(lex(&src).unwrap());
        assert_eq!(diags.len(), 2, "{diags:?}");
        // The good statements survived: y decl + final taskexit.
        assert_eq!(unit.tasks.len(), 1);
        assert!(unit.tasks[0].body.stmts.len() >= 2);
    }

    #[test]
    fn recovers_across_top_level_declarations() {
        let src = r#"
            class Good { flag f; }
            class { flag broken; }
            task ok(Good g in f) { taskexit(g: f := false); }
        "#;
        let (unit, diags) = parse_recovering(lex(src).unwrap());
        assert_eq!(diags.len(), 1);
        assert_eq!(unit.classes.len(), 1);
        assert_eq!(unit.tasks.len(), 1);
    }

    #[test]
    fn unterminated_block_is_a_single_error() {
        let src = "task t(A a in p) { int x = 1;";
        let (_, diags) = parse_recovering(lex(src).unwrap());
        assert!(!diags.is_empty());
    }

    #[test]
    fn compile_source_reports_every_parse_error() {
        let src = r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in initialstate) {
                int a = ;
                int b = ;
                taskexit(s: initialstate := false);
            }
        "#;
        let err = crate::compile_source("multi", src).unwrap_err();
        assert_eq!(err.diagnostics.len(), 2, "{err}");
    }
}
