//! Abstract syntax tree for the Bamboo DSL, as produced by the parser.
//!
//! Names are unresolved strings; [`crate::resolve`] turns a [`Unit`] into a
//! [`crate::spec::ProgramSpec`] plus typed IR bodies.

use crate::span::Span;

/// A parsed compilation unit: the whole program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Unit {
    /// Class declarations in source order.
    pub classes: Vec<ClassDecl>,
    /// Tag type declarations in source order.
    pub tag_types: Vec<TagTypeDecl>,
    /// Task declarations in source order.
    pub tasks: Vec<TaskDecl>,
}

/// `tagtype name;`
#[derive(Clone, Debug, PartialEq)]
pub struct TagTypeDecl {
    /// The tag type's name.
    pub name: String,
    /// Source location.
    pub span: Span,
}

/// A class declaration with flags, fields, constructors, and methods.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassDecl {
    /// The class name.
    pub name: String,
    /// `flag name;` declarations.
    pub flags: Vec<(String, Span)>,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Methods; constructors are methods named like the class with
    /// `is_ctor` set.
    pub methods: Vec<MethodDecl>,
    /// Source location.
    pub span: Span,
}

/// `type name;`
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDecl {
    /// Declared type.
    pub ty: TypeExpr,
    /// Field name.
    pub name: String,
    /// Source location.
    pub span: Span,
}

/// A method or constructor declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodDecl {
    /// Return type (`void` for constructors).
    pub ret: TypeExpr,
    /// Method name (class name for constructors).
    pub name: String,
    /// Parameters as `(type, name)` pairs.
    pub params: Vec<(TypeExpr, String)>,
    /// The body.
    pub body: Block,
    /// Whether this is a constructor.
    pub is_ctor: bool,
    /// Source location.
    pub span: Span,
}

/// A syntactic type.
#[derive(Clone, Debug, PartialEq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `float`
    Float,
    /// `boolean`
    Bool,
    /// `String`
    Str,
    /// `void`
    Void,
    /// A class name.
    Named(String),
    /// `T[]`
    Array(Box<TypeExpr>),
}

/// A task declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskDecl {
    /// The task name.
    pub name: String,
    /// Guarded parameters.
    pub params: Vec<TaskParamDecl>,
    /// The body.
    pub body: Block,
    /// Source location.
    pub span: Span,
}

/// `ClassName name in flagexp with tagtype tagvar and ...`
#[derive(Clone, Debug, PartialEq)]
pub struct TaskParamDecl {
    /// The parameter's class name.
    pub class: String,
    /// The parameter name.
    pub name: String,
    /// The flag guard.
    pub guard: FlagExprAst,
    /// `with` constraints as `(tagtype, tagvar)` pairs.
    pub tags: Vec<(String, String)>,
    /// Source location.
    pub span: Span,
}

/// An unresolved flag guard expression.
#[derive(Clone, Debug, PartialEq)]
pub enum FlagExprAst {
    /// A flag name.
    Flag(String, Span),
    /// `true` / `false`.
    Const(bool, Span),
    /// `!e`
    Not(Box<FlagExprAst>),
    /// `a and b`
    And(Box<FlagExprAst>, Box<FlagExprAst>),
    /// `a or b`
    Or(Box<FlagExprAst>, Box<FlagExprAst>),
}

/// A `{ ... }` statement block.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `type name = init;` (initializer optional).
    Local {
        /// Declared type.
        ty: TypeExpr,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `lvalue = expr;`
    Assign {
        /// Assignment target (variable, field, or index expression).
        lhs: Expr,
        /// Assigned value.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// `if (cond) { } else { }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
        /// Source location.
        span: Span,
    },
    /// `while (cond) { }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source location.
        span: Span,
    },
    /// `for (init; cond; step) { }` — init and step are simple statements.
    For {
        /// Initialization statement.
        init: Option<Box<Stmt>>,
        /// Loop condition.
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
        /// Source location.
        span: Span,
    },
    /// `return expr?;`
    Return {
        /// Optional return value.
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// `taskexit(p: flag := v, add t; q: ...);`
    TaskExit {
        /// Per-parameter actions as `(param name, actions)`.
        actions: Vec<(String, Vec<FlagOrTagActionAst>)>,
        /// Source location.
        span: Span,
    },
    /// `tag t = new tag(tagtype);`
    NewTag {
        /// Tag variable name.
        var: String,
        /// Tag type name.
        tag_type: String,
        /// Source location.
        span: Span,
    },
    /// An expression evaluated for effect (a call).
    Expr(Expr),
    /// A nested block.
    Block(Block),
}

/// One flag or tag action in a `taskexit` or allocation state list.
#[derive(Clone, Debug, PartialEq)]
pub enum FlagOrTagActionAst {
    /// `flagname := bool`
    SetFlag(String, bool, Span),
    /// `add tagvar`
    AddTag(String, Span),
    /// `clear tagvar`
    ClearTag(String, Span),
}

/// A binary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numbers, or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// A unary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64, Span),
    /// Float literal.
    FloatLit(f64, Span),
    /// Boolean literal.
    BoolLit(bool, Span),
    /// String literal.
    StrLit(String, Span),
    /// Variable reference (also `null`, resolved later).
    Var(String, Span),
    /// `this`
    This(Span),
    /// `obj.field`
    Field {
        /// Receiver.
        obj: Box<Expr>,
        /// Field name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// `arr[idx]`
    Index {
        /// Array expression.
        arr: Box<Expr>,
        /// Index expression.
        idx: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `recv.name(args)` or builtin `name(args)`.
    Call {
        /// Receiver; `None` for builtin free functions.
        recv: Option<Box<Expr>>,
        /// Method or builtin name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// `new C(args){ flags/tags }`
    New {
        /// Class name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Initial abstract state actions (flags and tag adds).
        state: Vec<FlagOrTagActionAst>,
        /// Source location.
        span: Span,
    },
    /// `new T[len]`
    NewArray {
        /// Element type.
        elem: TypeExpr,
        /// Length expression.
        len: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// Returns the expression's source location.
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit(_, s)
            | Expr::FloatLit(_, s)
            | Expr::BoolLit(_, s)
            | Expr::StrLit(_, s)
            | Expr::Var(_, s)
            | Expr::This(s) => *s,
            Expr::Field { span, .. }
            | Expr::Index { span, .. }
            | Expr::Call { span, .. }
            | Expr::New { span, .. }
            | Expr::NewArray { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. } => *span,
        }
    }
}
