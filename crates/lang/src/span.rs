//! Source locations and diagnostics for the Bamboo DSL frontend.

use std::error::Error;
use std::fmt;

/// A half-open byte range into a source file, with line/column of its start.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes.
    pub const DUMMY: Span = Span {
        start: 0,
        end: 0,
        line: 0,
        col: 0,
    };

    /// Creates a span from raw coordinates.
    pub fn new(start: u32, end: u32, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// Line/column information is taken from whichever span starts first.
    pub fn to(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compilation error produced by the lexer, parser, resolver, or type
/// checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where in the source the problem was detected.
    pub span: Span,
    /// Human-readable description, lowercase, no trailing punctuation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span == Span::DUMMY {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{}: {}", self.span, self.message)
        }
    }
}

impl Error for Diagnostic {}

/// Error type returned by whole-program compilation: one or more diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// The diagnostics, in source order. Never empty.
    pub diagnostics: Vec<Diagnostic>,
}

impl CompileError {
    /// Wraps a single diagnostic.
    pub fn single(diag: Diagnostic) -> Self {
        CompileError {
            diagnostics: vec![diag],
        }
    }

    /// Wraps a list of diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `diagnostics` is empty.
    pub fn from_list(diagnostics: Vec<Diagnostic>) -> Self {
        assert!(
            !diagnostics.is_empty(),
            "CompileError requires at least one diagnostic"
        );
        CompileError { diagnostics }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl Error for CompileError {}

impl From<Diagnostic> for CompileError {
    fn from(diag: Diagnostic) -> Self {
        CompileError::single(diag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(4, 8, 1, 5);
        let b = Span::new(10, 14, 2, 1);
        let j = a.to(b);
        assert_eq!((j.start, j.end), (4, 14));
        assert_eq!((j.line, j.col), (1, 5));
        // Join is symmetric on extents.
        let k = b.to(a);
        assert_eq!((k.start, k.end), (4, 14));
        assert_eq!((k.line, k.col), (1, 5));
    }

    #[test]
    fn diagnostic_display_includes_location() {
        let d = Diagnostic::new(Span::new(0, 1, 3, 7), "unexpected token");
        assert_eq!(d.to_string(), "3:7: unexpected token");
    }

    #[test]
    fn compile_error_joins_lines() {
        let e = CompileError::from_list(vec![
            Diagnostic::new(Span::DUMMY, "first"),
            Diagnostic::new(Span::DUMMY, "second"),
        ]);
        assert_eq!(e.to_string(), "first\nsecond");
    }
}
