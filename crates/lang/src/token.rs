//! Token definitions for the Bamboo DSL.

use crate::span::Span;
use std::fmt;

/// The lexical category and payload of a token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier or type name.
    Ident(String),
    /// An integer literal.
    IntLit(i64),
    /// A floating-point literal.
    FloatLit(f64),
    /// A string literal (contents unescaped).
    StrLit(String),

    // Keywords.
    /// `class`
    Class,
    /// `flag`
    Flag,
    /// `tagtype`
    TagType,
    /// `task`
    Task,
    /// `taskexit`
    TaskExit,
    /// `new`
    New,
    /// `tag`
    Tag,
    /// `in`
    In,
    /// `with`
    With,
    /// `and` (flag expressions)
    And,
    /// `or` (flag expressions)
    Or,
    /// `add` (tag action)
    Add,
    /// `clear` (tag action)
    Clear,
    /// `true`
    True,
    /// `false`
    False,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `int`
    KwInt,
    /// `float`
    KwFloat,
    /// `boolean`
    KwBoolean,
    /// `String`
    KwString,
    /// `void`
    KwVoid,
    /// `this`
    This,

    // Punctuation and operators.
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `:=`
    ColonEq,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `word`, if it is one.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "class" => TokenKind::Class,
            "flag" => TokenKind::Flag,
            "tagtype" => TokenKind::TagType,
            "task" => TokenKind::Task,
            "taskexit" => TokenKind::TaskExit,
            "new" => TokenKind::New,
            "tag" => TokenKind::Tag,
            "in" => TokenKind::In,
            "with" => TokenKind::With,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "add" => TokenKind::Add,
            "clear" => TokenKind::Clear,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "int" => TokenKind::KwInt,
            "float" => TokenKind::KwFloat,
            "boolean" => TokenKind::KwBoolean,
            "String" => TokenKind::KwString,
            "void" => TokenKind::KwVoid,
            "this" => TokenKind::This,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::IntLit(v) => write!(f, "integer `{v}`"),
            TokenKind::FloatLit(v) => write!(f, "float `{v}`"),
            TokenKind::StrLit(s) => write!(f, "string {s:?}"),
            TokenKind::Eof => write!(f, "end of input"),
            other => {
                let text = match other {
                    TokenKind::Class => "class",
                    TokenKind::Flag => "flag",
                    TokenKind::TagType => "tagtype",
                    TokenKind::Task => "task",
                    TokenKind::TaskExit => "taskexit",
                    TokenKind::New => "new",
                    TokenKind::Tag => "tag",
                    TokenKind::In => "in",
                    TokenKind::With => "with",
                    TokenKind::And => "and",
                    TokenKind::Or => "or",
                    TokenKind::Add => "add",
                    TokenKind::Clear => "clear",
                    TokenKind::True => "true",
                    TokenKind::False => "false",
                    TokenKind::If => "if",
                    TokenKind::Else => "else",
                    TokenKind::While => "while",
                    TokenKind::For => "for",
                    TokenKind::Return => "return",
                    TokenKind::Break => "break",
                    TokenKind::Continue => "continue",
                    TokenKind::KwInt => "int",
                    TokenKind::KwFloat => "float",
                    TokenKind::KwBoolean => "boolean",
                    TokenKind::KwString => "String",
                    TokenKind::KwVoid => "void",
                    TokenKind::This => "this",
                    TokenKind::LBrace => "{",
                    TokenKind::RBrace => "}",
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::LBracket => "[",
                    TokenKind::RBracket => "]",
                    TokenKind::Semi => ";",
                    TokenKind::Comma => ",",
                    TokenKind::Dot => ".",
                    TokenKind::Colon => ":",
                    TokenKind::ColonEq => ":=",
                    TokenKind::Eq => "=",
                    TokenKind::EqEq => "==",
                    TokenKind::NotEq => "!=",
                    TokenKind::Lt => "<",
                    TokenKind::Le => "<=",
                    TokenKind::Gt => ">",
                    TokenKind::Ge => ">=",
                    TokenKind::Plus => "+",
                    TokenKind::Minus => "-",
                    TokenKind::Star => "*",
                    TokenKind::Slash => "/",
                    TokenKind::Percent => "%",
                    TokenKind::Bang => "!",
                    TokenKind::AmpAmp => "&&",
                    TokenKind::PipePipe => "||",
                    _ => unreachable!(),
                };
                write!(f, "`{text}`")
            }
        }
    }
}

/// A token with its source location.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Lexical category and payload.
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("taskexit"), Some(TokenKind::TaskExit));
        assert_eq!(TokenKind::keyword("String"), Some(TokenKind::KwString));
        assert_eq!(TokenKind::keyword("widget"), None);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(TokenKind::ColonEq.to_string(), "`:=`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
    }
}
