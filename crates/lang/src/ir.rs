//! Typed tree IR for task and method bodies.
//!
//! Produced by [`crate::resolve`], executed by [`crate::interp`], and
//! analyzed by the disjointness analysis. Names are resolved to slot
//! indices and entity ids; types have been checked, so the interpreter can
//! dispatch on runtime value kinds without re-validating.

use crate::ast::{BinOp, UnOp};
use crate::ids::{AllocSiteId, ClassId, ExitId, TagTypeId, TagVarId};
use crate::types::Type;

/// The IR for a whole program: class layouts plus task bodies.
#[derive(Clone, Debug, Default)]
pub struct IrProgram {
    /// One entry per class, indexed by [`ClassId`].
    pub classes: Vec<IrClass>,
    /// One body per task, indexed by [`crate::ids::TaskId`].
    pub tasks: Vec<IrBody>,
}

/// The layout and methods of one class.
#[derive(Clone, Debug, Default)]
pub struct IrClass {
    /// Field types in declaration order; field index = position.
    pub fields: Vec<IrField>,
    /// Methods (including the constructor, if any).
    pub methods: Vec<IrMethod>,
    /// Index into `methods` of the constructor, if declared.
    pub ctor: Option<usize>,
}

/// A field's name and type.
#[derive(Clone, Debug)]
pub struct IrField {
    /// Field name (for diagnostics).
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A method: `this` occupies local slot 0, parameters follow.
#[derive(Clone, Debug)]
pub struct IrMethod {
    /// Method name.
    pub name: String,
    /// Number of parameters (excluding `this`).
    pub n_params: usize,
    /// Return type.
    pub ret: Type,
    /// The body.
    pub body: IrBody,
}

/// An executable body with a flat local-slot frame.
///
/// For tasks, slots `0..n_params` hold the parameter objects. For methods,
/// slot 0 holds `this` and slots `1..=n_params` hold the parameters.
#[derive(Clone, Debug, Default)]
pub struct IrBody {
    /// Total number of local slots (parameters included).
    pub n_slots: usize,
    /// Number of tag-variable slots (tasks only).
    pub n_tag_slots: usize,
    /// The statements.
    pub stmts: Vec<IrStmt>,
}

/// A statement.
#[derive(Clone, Debug)]
pub enum IrStmt {
    /// Store `value` into `target`.
    Assign {
        /// Destination place.
        target: IrPlace,
        /// Source expression.
        value: IrExpr,
    },
    /// Conditional.
    If {
        /// Condition (boolean).
        cond: IrExpr,
        /// Then branch.
        then_blk: Vec<IrStmt>,
        /// Else branch (possibly empty).
        else_blk: Vec<IrStmt>,
    },
    /// `while` loop.
    While {
        /// Condition (boolean).
        cond: IrExpr,
        /// Loop body.
        body: Vec<IrStmt>,
    },
    /// `for` loop; `continue` jumps to `step`.
    For {
        /// Initialization (possibly empty).
        init: Vec<IrStmt>,
        /// Condition; `None` means always true.
        cond: Option<IrExpr>,
        /// Step statements (possibly empty).
        step: Vec<IrStmt>,
        /// Loop body.
        body: Vec<IrStmt>,
    },
    /// Return from a method.
    Return(Option<IrExpr>),
    /// Exit a loop.
    Break,
    /// Continue a loop.
    Continue,
    /// Leave the task through declared exit `exit` (tasks only); the
    /// flag/tag actions live in the task's [`crate::spec::ExitSpec`].
    TaskExit(ExitId),
    /// `tag var = new tag(tag_type);` — create a fresh tag instance.
    NewTag {
        /// Destination tag slot.
        var: TagVarId,
        /// The instance's tag type.
        tag_type: TagTypeId,
    },
    /// Evaluate for side effects.
    Expr(IrExpr),
}

/// An assignable place.
#[derive(Clone, Debug)]
pub enum IrPlace {
    /// A local slot.
    Local(u32),
    /// `obj.field`.
    Field {
        /// The receiver.
        obj: IrExpr,
        /// Field index within the receiver's class.
        field: u32,
    },
    /// `arr[idx]`.
    Index {
        /// The array.
        arr: IrExpr,
        /// The element index.
        idx: IrExpr,
    },
}

/// An expression.
#[derive(Clone, Debug)]
pub enum IrExpr {
    /// Integer constant.
    ConstInt(i64),
    /// Float constant.
    ConstFloat(f64),
    /// Boolean constant.
    ConstBool(bool),
    /// String constant.
    ConstStr(String),
    /// The `null` reference.
    Null,
    /// Read a local slot.
    Local(u32),
    /// `obj.field`.
    Field {
        /// The receiver.
        obj: Box<IrExpr>,
        /// Field index.
        field: u32,
    },
    /// `arr[idx]`.
    Index {
        /// The array.
        arr: Box<IrExpr>,
        /// The element index.
        idx: Box<IrExpr>,
    },
    /// Invoke `method` on `obj` (static dispatch; the subset has no
    /// inheritance).
    CallMethod {
        /// The receiver.
        obj: Box<IrExpr>,
        /// The receiver's class.
        class: ClassId,
        /// Method index within the class.
        method: u32,
        /// Arguments.
        args: Vec<IrExpr>,
    },
    /// Invoke a builtin.
    CallBuiltin {
        /// Which builtin.
        builtin: Builtin,
        /// Arguments.
        args: Vec<IrExpr>,
    },
    /// Allocate an object.
    ///
    /// `site` is `Some` when the object enters task dispatch (its class is
    /// a task-parameter class and the allocation occurs in a task body);
    /// the flag/tag initialization lives in the task's
    /// [`crate::spec::AllocSiteSpec`].
    New {
        /// The class to instantiate.
        class: ClassId,
        /// Constructor arguments (empty when no constructor declared).
        args: Vec<IrExpr>,
        /// Dispatch site, if the object participates in task dispatch.
        site: Option<AllocSiteId>,
    },
    /// Allocate an array of `len` default-initialized elements.
    NewArray {
        /// Element type (determines the default element value).
        elem: Type,
        /// Length.
        len: Box<IrExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<IrExpr>,
    },
    /// Binary operation (operands have identical checked types; `&&`/`||`
    /// short-circuit).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<IrExpr>,
        /// Right operand.
        rhs: Box<IrExpr>,
    },
}

/// Builtin functions callable without a receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `print(String)` — write to stdout.
    Print,
    /// `println(String)` — write a line to stdout.
    Println,
    /// `itoa(int) -> String`.
    Itoa,
    /// `ftoa(float) -> String`.
    Ftoa,
    /// `itof(int) -> float`.
    Itof,
    /// `ftoi(float) -> int` (truncating).
    Ftoi,
    /// `len(array|String) -> int`.
    Len,
    /// `split(String, String) -> String[]` — split on a separator.
    Split,
    /// `substr(String, int, int) -> String` — byte range `[start, end)`.
    Substr,
    /// `parse_int(String) -> int` (0 on malformed input).
    ParseInt,
    /// `sqrt(float) -> float`.
    Sqrt,
    /// `sin(float) -> float`.
    Sin,
    /// `cos(float) -> float`.
    Cos,
    /// `exp(float) -> float`.
    Exp,
    /// `log(float) -> float` (natural).
    Log,
    /// `pow(float, float) -> float`.
    Pow,
    /// `floor(float) -> float`.
    Floor,
    /// `abs(int|float)` — same type as input.
    Abs,
    /// `min(a, b)` — both `int` or both `float`.
    Min,
    /// `max(a, b)` — both `int` or both `float`.
    Max,
}

impl Builtin {
    /// Returns the builtin named `name`, if any.
    pub fn by_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "print" => Builtin::Print,
            "println" => Builtin::Println,
            "itoa" => Builtin::Itoa,
            "ftoa" => Builtin::Ftoa,
            "itof" => Builtin::Itof,
            "ftoi" => Builtin::Ftoi,
            "len" => Builtin::Len,
            "split" => Builtin::Split,
            "substr" => Builtin::Substr,
            "parse_int" => Builtin::ParseInt,
            "sqrt" => Builtin::Sqrt,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "exp" => Builtin::Exp,
            "log" => Builtin::Log,
            "pow" => Builtin::Pow,
            "floor" => Builtin::Floor,
            "abs" => Builtin::Abs,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            _ => return None,
        })
    }

    /// Returns the number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Print
            | Builtin::Println
            | Builtin::Itoa
            | Builtin::Ftoa
            | Builtin::Itof
            | Builtin::Ftoi
            | Builtin::Len
            | Builtin::ParseInt
            | Builtin::Sqrt
            | Builtin::Sin
            | Builtin::Cos
            | Builtin::Exp
            | Builtin::Log
            | Builtin::Floor
            | Builtin::Abs => 1,
            Builtin::Split | Builtin::Pow | Builtin::Min | Builtin::Max => 2,
            Builtin::Substr => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup_and_arity() {
        assert_eq!(Builtin::by_name("sqrt"), Some(Builtin::Sqrt));
        assert_eq!(Builtin::by_name("nope"), None);
        assert_eq!(Builtin::Substr.arity(), 3);
        assert_eq!(Builtin::Len.arity(), 1);
    }
}
