//! Hand-written lexer for the Bamboo DSL.
//!
//! Supports `//` line comments and `/* ... */` block comments, decimal
//! integer and float literals, and double-quoted string literals with
//! `\n`, `\t`, `\\`, and `\"` escapes.

use crate::span::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// Lexes `source` into a token list terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a diagnostic for unterminated comments/strings, bad escapes,
/// malformed numbers, or characters outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, start: (usize, u32, u32)) -> Span {
        Span::new(start.0 as u32, self.pos as u32, start.1, start.2)
    }

    fn push(&mut self, kind: TokenKind, start: (usize, u32, u32)) {
        let span = self.span_from(start);
        self.tokens.push(Token { kind, span });
    }

    fn error(&self, start: (usize, u32, u32), msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(self.span_from(start), msg)
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        while let Some(b) = self.peek() {
            let start = self.here();
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => return Err(self.error(start, "unterminated block comment")),
                        }
                    }
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'0'..=b'9' => self.number(start)?,
                b'"' => self.string(start)?,
                _ => self.operator(start)?,
            }
        }
        let start = self.here();
        self.push(TokenKind::Eof, start);
        Ok(self.tokens)
    }

    fn ident(&mut self, start: (usize, u32, u32)) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let word = std::str::from_utf8(&self.src[start.0..self.pos]).expect("ascii idents");
        let kind = TokenKind::keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()));
        self.push(kind, start);
    }

    fn number(&mut self, start: (usize, u32, u32)) -> Result<(), Diagnostic> {
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                // A `.` begins a fraction only when followed by a digit, so
                // `1.foo()` still lexes as int, dot, ident.
                b'.' if !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) => {
                    is_float = true;
                    self.bump();
                }
                b'e' | b'E' if is_float => {
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start.0..self.pos]).expect("ascii digits");
        let kind = if is_float {
            TokenKind::FloatLit(
                text.parse()
                    .map_err(|_| self.error(start, format!("malformed float `{text}`")))?,
            )
        } else {
            TokenKind::IntLit(
                text.parse()
                    .map_err(|_| self.error(start, format!("malformed integer `{text}`")))?,
            )
        };
        self.push(kind, start);
        Ok(())
    }

    fn string(&mut self, start: (usize, u32, u32)) -> Result<(), Diagnostic> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => value.push('\n'),
                    Some(b't') => value.push('\t'),
                    Some(b'\\') => value.push('\\'),
                    Some(b'"') => value.push('"'),
                    _ => return Err(self.error(start, "invalid escape sequence")),
                },
                Some(c) => value.push(c as char),
                None => return Err(self.error(start, "unterminated string literal")),
            }
        }
        self.push(TokenKind::StrLit(value), start);
        Ok(())
    }

    fn operator(&mut self, start: (usize, u32, u32)) -> Result<(), Diagnostic> {
        let b = self.bump().expect("caller checked peek");
        let two = |lexer: &mut Self, next: u8, long: TokenKind, short: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                long
            } else {
                short
            }
        };
        let kind = match b {
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'.' => TokenKind::Dot,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b':' => two(self, b'=', TokenKind::ColonEq, TokenKind::Colon),
            b'=' => two(self, b'=', TokenKind::EqEq, TokenKind::Eq),
            b'!' => two(self, b'=', TokenKind::NotEq, TokenKind::Bang),
            b'<' => two(self, b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two(self, b'=', TokenKind::Ge, TokenKind::Gt),
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AmpAmp
                } else {
                    return Err(self.error(start, "expected `&&`"));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::PipePipe
                } else {
                    return Err(self.error(start, "expected `||`"));
                }
            }
            other => {
                return Err(self.error(start, format!("unexpected character `{}`", other as char)))
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_task_declaration() {
        let got = kinds("task startup(StartupObject s in initialstate)");
        assert_eq!(
            got,
            vec![
                T::Task,
                T::Ident("startup".into()),
                T::LParen,
                T::Ident("StartupObject".into()),
                T::Ident("s".into()),
                T::In,
                T::Ident("initialstate".into()),
                T::RParen,
                T::Eof,
            ]
        );
    }

    #[test]
    fn lexes_colon_eq_vs_colon() {
        assert_eq!(kinds(": :="), vec![T::Colon, T::ColonEq, T::Eof]);
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 3.25 1.5e3 1.5e-2"),
            vec![
                T::IntLit(42),
                T::FloatLit(3.25),
                T::FloatLit(1500.0),
                T::FloatLit(0.015),
                T::Eof
            ]
        );
    }

    #[test]
    fn int_followed_by_method_call_keeps_dot() {
        assert_eq!(
            kinds("1.foo"),
            vec![T::IntLit(1), T::Dot, T::Ident("foo".into()), T::Eof]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![T::StrLit("a\nb\"c".into()), T::Eof]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // line\n/* block\n comment */ b"),
            vec![T::Ident("a".into()), T::Ident("b".into()), T::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= == != ! && ||"),
            vec![
                T::Lt,
                T::Le,
                T::Gt,
                T::Ge,
                T::EqEq,
                T::NotEq,
                T::Bang,
                T::AmpAmp,
                T::PipePipe,
                T::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = lex("\"oops").unwrap_err();
        assert!(err.message.contains("unterminated string"));
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* no end").is_err());
    }

    #[test]
    fn stray_ampersand_is_error() {
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn spans_track_lines() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[1].span.line, 2);
        assert_eq!(tokens[1].span.col, 3);
    }
}
