//! Profile data: what the Bamboo compiler learns from a profiling run.
//!
//! A profile records, per task and per exit: how many invocations took the
//! exit, the cycles they consumed, and how many objects each allocation
//! site produced (paper §4.3.1). The derived statistics — exit
//! probability, mean cycles per exit, mean allocations per site per exit —
//! are the parameters of the Markov model that drives the scheduling
//! simulator.

use bamboo_lang::ids::{AllocSiteId, ExitId, TaskId};
use bamboo_lang::spec::ProgramSpec;
use std::fmt;

/// Abstract processor cycles.
pub type Cycles = u64;

/// Statistics for one exit of one task.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExitStats {
    /// Invocations that took this exit.
    pub count: u64,
    /// Total cycles across those invocations.
    pub total_cycles: Cycles,
    /// Total objects allocated per allocation site across those
    /// invocations (indexed by [`AllocSiteId`]).
    pub site_allocs: Vec<u64>,
}

impl ExitStats {
    /// Mean cycles per invocation through this exit (0 if never taken).
    pub fn mean_cycles(&self) -> Cycles {
        self.total_cycles.checked_div(self.count).unwrap_or(0)
    }

    /// Mean objects allocated at `site` per invocation through this exit.
    pub fn mean_allocs(&self, site: AllocSiteId) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.site_allocs.get(site.index()).copied().unwrap_or(0) as f64 / self.count as f64
        }
    }
}

/// One profiled invocation, in execution order (enables the simulator's
/// replay mode: multi-exit control tasks — iteration bounds, phase-final
/// merges — take their exits at the recorded *positions*, which aggregate
/// probabilities cannot express).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InvocationRecord {
    /// The exit taken.
    pub exit: u16,
    /// Cycles consumed.
    pub cycles: Cycles,
    /// Objects allocated, as `(site, count)` pairs (zero counts omitted).
    pub allocs: Vec<(u16, u32)>,
}

/// Statistics for one task.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TaskProfile {
    /// Per-exit statistics (indexed by [`ExitId`]).
    pub exits: Vec<ExitStats>,
    /// The exact invocation sequence (replay source).
    pub sequence: Vec<InvocationRecord>,
}

impl TaskProfile {
    /// Total invocations of the task.
    pub fn invocations(&self) -> u64 {
        self.exits.iter().map(|e| e.count).sum()
    }

    /// Probability that an invocation takes `exit` (0 if never invoked).
    pub fn exit_probability(&self, exit: ExitId) -> f64 {
        let total = self.invocations();
        if total == 0 {
            0.0
        } else {
            self.exits[exit.index()].count as f64 / total as f64
        }
    }

    /// Mean cycles over all exits (0 if never invoked).
    pub fn mean_cycles(&self) -> Cycles {
        self.exits
            .iter()
            .map(|e| e.total_cycles)
            .sum::<Cycles>()
            .checked_div(self.invocations())
            .unwrap_or(0)
    }
}

/// A complete program profile.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Profile {
    /// The profiled program's name.
    pub program: String,
    /// A label for the profiled input (e.g. `"original"`, `"double"`).
    pub input: String,
    /// Per-task statistics (indexed by [`TaskId`]).
    pub tasks: Vec<TaskProfile>,
    /// Total cycles of the profiled (single-core) execution.
    pub total_cycles: Cycles,
}

impl Profile {
    /// Returns the profile of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn task(&self, task: TaskId) -> &TaskProfile {
        &self.tasks[task.index()]
    }

    /// Renders a human-readable summary table.
    pub fn summary(&self, spec: &ProgramSpec) -> String {
        let mut out = format!("profile `{}` on input `{}`\n", self.program, self.input);
        for (i, tp) in self.tasks.iter().enumerate() {
            let task = &spec.tasks[i];
            out.push_str(&format!(
                "  {:<28} inv={:<8} mean={} cyc\n",
                task.name,
                tp.invocations(),
                tp.mean_cycles()
            ));
            for (e, es) in tp.exits.iter().enumerate() {
                if es.count == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "    exit {e}: p={:.2} mean={} cyc, allocs={:?}\n",
                    tp.exit_probability(ExitId::new(e)),
                    es.mean_cycles(),
                    es.site_allocs
                ));
            }
        }
        out
    }
}

/// Accumulates profile data during an instrumented run.
#[derive(Clone, Debug)]
pub struct ProfileCollector {
    program: String,
    input: String,
    tasks: Vec<TaskProfile>,
    sites_per_task: Vec<usize>,
    total_cycles: Cycles,
}

impl ProfileCollector {
    /// Creates a collector shaped for `spec`.
    pub fn new(spec: &ProgramSpec, input: impl Into<String>) -> Self {
        ProfileCollector {
            program: spec.name.clone(),
            input: input.into(),
            tasks: spec
                .tasks
                .iter()
                .map(|t| TaskProfile {
                    exits: vec![
                        ExitStats {
                            count: 0,
                            total_cycles: 0,
                            site_allocs: vec![0; t.alloc_sites.len()],
                        };
                        t.exits.len()
                    ],
                    sequence: Vec::new(),
                })
                .collect(),
            sites_per_task: spec.tasks.iter().map(|t| t.alloc_sites.len()).collect(),
            total_cycles: 0,
        }
    }

    /// Records one invocation.
    ///
    /// `allocs` lists how many objects each allocation site produced
    /// (missing trailing sites mean zero).
    ///
    /// # Panics
    ///
    /// Panics if the task, exit, or a site index is out of range.
    pub fn record(
        &mut self,
        task: TaskId,
        exit: ExitId,
        cycles: Cycles,
        allocs: &[(AllocSiteId, u64)],
    ) {
        let tp = &mut self.tasks[task.index()];
        let stats = &mut tp.exits[exit.index()];
        stats.count += 1;
        stats.total_cycles += cycles;
        for (site, n) in allocs {
            assert!(
                site.index() < self.sites_per_task[task.index()],
                "site out of range"
            );
            stats.site_allocs[site.index()] += n;
        }
        tp.sequence.push(InvocationRecord {
            exit: exit.index() as u16,
            cycles,
            allocs: allocs
                .iter()
                .filter(|(_, n)| *n > 0)
                .map(|(s, n)| (s.index() as u16, *n as u32))
                .collect(),
        });
        self.total_cycles += cycles;
    }

    /// Adds cycles that occurred outside task bodies (dispatch overhead);
    /// included in the profile's total.
    pub fn record_overhead(&mut self, cycles: Cycles) {
        self.total_cycles += cycles;
    }

    /// Finalizes the profile.
    pub fn finish(self) -> Profile {
        Profile {
            program: self.program,
            input: self.input,
            tasks: self.tasks,
            total_cycles: self.total_cycles,
        }
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile `{}`/`{}`: {} tasks, {} total cycles",
            self.program,
            self.input,
            self.tasks.len(),
            self.total_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_lang::builder::ProgramBuilder;
    use bamboo_lang::spec::FlagExpr;

    fn spec() -> ProgramSpec {
        let mut b: ProgramBuilder<()> = ProgramBuilder::new("p");
        let s = b.class("StartupObject", &["initialstate"]);
        let w = b.class("W", &["ready"]);
        let init = b.flag(s, "initialstate");
        let ready = b.flag(w, "ready");
        b.task("startup")
            .param("s", s, FlagExpr::flag(init))
            .alloc(w, &[(ready, true)], &[])
            .exit("", |e| e.set(0, init, false))
            .body(())
            .finish();
        b.task("work")
            .param("w", w, FlagExpr::flag(ready))
            .exit("more", |e| e.set(0, ready, true))
            .exit("done", |e| e.set(0, ready, false))
            .body(())
            .finish();
        b.build().unwrap().spec
    }

    #[test]
    fn collector_accumulates_stats() {
        let spec = spec();
        let mut c = ProfileCollector::new(&spec, "original");
        c.record(
            TaskId::new(0),
            ExitId::new(0),
            100,
            &[(AllocSiteId::new(0), 4)],
        );
        for _ in 0..3 {
            c.record(TaskId::new(1), ExitId::new(0), 10, &[]);
        }
        c.record(TaskId::new(1), ExitId::new(1), 20, &[]);
        let p = c.finish();
        assert_eq!(p.total_cycles, 150);
        let work = p.task(TaskId::new(1));
        assert_eq!(work.invocations(), 4);
        assert!((work.exit_probability(ExitId::new(0)) - 0.75).abs() < 1e-9);
        assert_eq!(work.exits[0].mean_cycles(), 10);
        assert_eq!(work.exits[1].mean_cycles(), 20);
        let startup = p.task(TaskId::new(0));
        assert!((startup.exits[0].mean_allocs(AllocSiteId::new(0)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let spec = spec();
        let p = ProfileCollector::new(&spec, "x").finish();
        assert_eq!(p.task(TaskId::new(0)).invocations(), 0);
        assert_eq!(p.task(TaskId::new(0)).mean_cycles(), 0);
        assert_eq!(p.task(TaskId::new(0)).exit_probability(ExitId::new(0)), 0.0);
    }

    #[test]
    fn summary_lists_tasks() {
        let spec = spec();
        let mut c = ProfileCollector::new(&spec, "x");
        c.record(TaskId::new(1), ExitId::new(1), 20, &[]);
        let p = c.finish();
        let s = p.summary(&spec);
        assert!(s.contains("work"));
        assert!(s.contains("p=1.00"));
    }

    #[test]
    fn clone_preserves_profile() {
        let spec = spec();
        let mut c = ProfileCollector::new(&spec, "x");
        c.record(TaskId::new(0), ExitId::new(0), 5, &[]);
        let p = c.finish();
        assert_eq!(p.clone(), p);
    }
}
