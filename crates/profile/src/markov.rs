//! Markov execution model derived from a profile (paper §4.4).
//!
//! The scheduling simulator never executes application code; it predicts,
//! per simulated invocation, (1) the exit a task takes, (2) the cycles the
//! invocation consumes, and (3) how many objects each allocation site
//! produces. The paper's simulator is deterministic: it maintains a count
//! per destination and "chooses the destination state that minimizes the
//! difference between these counts and the counts predicted by the task's
//! recorded statistics". [`MarkovModel`] implements exactly that
//! count-matching rule, plus the analogous fractional accumulator for
//! allocation counts, so repeated simulations of the same layout are
//! reproducible.

use crate::profile::{Cycles, Profile};
use bamboo_lang::ids::{AllocSiteId, ExitId, TaskId};

/// Per-task prediction state.
#[derive(Clone, Debug, Default)]
struct TaskState {
    /// Simulated invocations that took each exit so far.
    exit_counts: Vec<u64>,
    /// Fractional allocation accumulators per site.
    alloc_accum: Vec<f64>,
    /// Position in the recorded invocation sequence (replay mode).
    replay_pos: usize,
}

/// Deterministic Markov model of a program's execution.
///
/// Create one per simulation run; prediction state is internal and
/// advances with every [`MarkovModel::predict`] call.
#[derive(Clone, Debug)]
pub struct MarkovModel<'p> {
    profile: &'p Profile,
    states: Vec<TaskState>,
    replay: bool,
}

/// One predicted invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// The exit the invocation takes.
    pub exit: ExitId,
    /// The cycles it consumes.
    pub cycles: Cycles,
    /// Objects produced per allocation site, as `(site, count)` with
    /// zero-count sites omitted.
    pub allocs: Vec<(AllocSiteId, u64)>,
}

impl<'p> MarkovModel<'p> {
    /// Creates a model over `profile`.
    pub fn new(profile: &'p Profile) -> Self {
        let states = profile
            .tasks
            .iter()
            .map(|t| TaskState {
                exit_counts: vec![0; t.exits.len()],
                alloc_accum: vec![0.0; t.exits.first().map(|e| e.site_allocs.len()).unwrap_or(0)],
                replay_pos: 0,
            })
            .collect();
        MarkovModel {
            profile,
            states,
            replay: true,
        }
    }

    /// Creates a model that ignores the recorded invocation sequence and
    /// predicts from aggregate statistics only (the paper's plain
    /// count-matching Markov model; used by the Figure 9 ablation).
    pub fn without_replay(profile: &'p Profile) -> Self {
        let mut model = MarkovModel::new(profile);
        model.replay = false;
        model
    }

    /// Predicts the next invocation of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range or was never profiled (zero
    /// invocations) — the synthesis pipeline only simulates tasks the
    /// profile observed.
    pub fn predict(&mut self, task: TaskId) -> Prediction {
        let tp = self.profile.task(task);
        let total: u64 = tp.invocations();
        assert!(total > 0, "task {task} was never profiled");
        let state = &mut self.states[task.index()];

        // Replay mode: while recorded invocations remain, predict exactly
        // what the profiled execution did at this position. Control tasks
        // whose exits encode iteration/phase boundaries are predicted
        // faithfully; past the recording (larger inputs than profiled)
        // the count-matching model below takes over.
        if self.replay && state.replay_pos < tp.sequence.len() {
            let rec = &tp.sequence[state.replay_pos];
            state.replay_pos += 1;
            state.exit_counts[rec.exit as usize] += 1;
            return Prediction {
                exit: ExitId::new(rec.exit as usize),
                cycles: rec.cycles,
                allocs: rec
                    .allocs
                    .iter()
                    .map(|(s, n)| (AllocSiteId::new(*s as usize), *n as u64))
                    .collect(),
            };
        }

        // Count-matching exit choice, in virtual-finish-time order: exit
        // `i` is scheduled at multiples of `1/p_i`, so the next prediction
        // is the exit with the smallest `(c_i + 1) / p_i`. This keeps the
        // simulated counts matched to the profiled probabilities *and*
        // defers rare exits to their expected position — a task whose
        // completion exit was taken once in N profiled invocations
        // completes on the N-th simulated invocation, not mid-stream.
        let mut best = 0usize;
        let mut best_vft = f64::MAX;
        let mut best_prob = 0.0f64;
        for (i, stats) in tp.exits.iter().enumerate() {
            let prob = stats.count as f64 / total as f64;
            if prob == 0.0 {
                continue;
            }
            let vft = (state.exit_counts[i] + 1) as f64 / prob;
            if vft < best_vft || (vft == best_vft && prob > best_prob) {
                best_vft = vft;
                best_prob = prob;
                best = i;
            }
        }
        state.exit_counts[best] += 1;
        let exit = ExitId::new(best);
        let stats = &tp.exits[best];
        let cycles = stats.mean_cycles();

        // Allocation counts: accumulate the per-invocation mean and emit
        // the integer part, carrying the fraction.
        let mut allocs = Vec::new();
        for site in 0..state.alloc_accum.len() {
            let mean = stats.mean_allocs(AllocSiteId::new(site));
            state.alloc_accum[site] += mean;
            let emit = state.alloc_accum[site].floor();
            if emit > 0.0 {
                state.alloc_accum[site] -= emit;
                allocs.push((AllocSiteId::new(site), emit as u64));
            }
        }
        Prediction {
            exit,
            cycles,
            allocs,
        }
    }

    /// Resets prediction state (for a fresh simulation over the same
    /// profile).
    pub fn reset(&mut self) {
        for state in &mut self.states {
            state.exit_counts.iter_mut().for_each(|c| *c = 0);
            state.alloc_accum.iter_mut().for_each(|a| *a = 0.0);
            state.replay_pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ExitStats, TaskProfile};

    fn profile_two_exits() -> Profile {
        Profile {
            program: "p".into(),
            input: "x".into(),
            tasks: vec![TaskProfile {
                exits: vec![
                    ExitStats {
                        count: 3,
                        total_cycles: 30,
                        site_allocs: vec![6],
                    },
                    ExitStats {
                        count: 1,
                        total_cycles: 100,
                        site_allocs: vec![0],
                    },
                ],
                sequence: Vec::new(),
            }],
            total_cycles: 130,
        }
    }

    #[test]
    fn exit_choice_matches_probabilities() {
        let p = profile_two_exits();
        let mut m = MarkovModel::new(&p);
        let exits: Vec<usize> = (0..8)
            .map(|_| m.predict(TaskId::new(0)).exit.index())
            .collect();
        // 75% exit 0, 25% exit 1 — deterministic interleaving.
        assert_eq!(exits.iter().filter(|&&e| e == 0).count(), 6);
        assert_eq!(exits.iter().filter(|&&e| e == 1).count(), 2);
    }

    #[test]
    fn cycles_follow_exit_means() {
        let p = profile_two_exits();
        let mut m = MarkovModel::new(&p);
        let pred = m.predict(TaskId::new(0));
        assert_eq!(pred.cycles, if pred.exit.index() == 0 { 10 } else { 100 });
    }

    #[test]
    fn alloc_accumulator_emits_integer_counts() {
        let p = profile_two_exits();
        let mut m = MarkovModel::new(&p);
        // Exit 0 allocates 2 per invocation on average.
        let mut total = 0;
        for _ in 0..4 {
            let pred = m.predict(TaskId::new(0));
            if pred.exit.index() == 0 {
                total += pred.allocs.iter().map(|(_, n)| n).sum::<u64>();
            }
        }
        assert_eq!(total, 6);
    }

    #[test]
    fn reset_restores_initial_sequence() {
        let p = profile_two_exits();
        let mut m = MarkovModel::new(&p);
        let first: Vec<_> = (0..4).map(|_| m.predict(TaskId::new(0))).collect();
        m.reset();
        let second: Vec<_> = (0..4).map(|_| m.predict(TaskId::new(0))).collect();
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "never profiled")]
    fn unprofiled_task_panics() {
        let p = Profile {
            program: "p".into(),
            input: "x".into(),
            tasks: vec![TaskProfile {
                exits: vec![ExitStats::default()],
                sequence: Vec::new(),
            }],
            total_cycles: 0,
        };
        MarkovModel::new(&p).predict(TaskId::new(0));
    }
}
