#![warn(missing_docs)]

//! # bamboo-profile
//!
//! Profiling infrastructure for the Bamboo implementation-synthesis
//! pipeline (Zhou & Demsky, PLDI 2010, paper sections 4.3.1 and 4.4).
//!
//! Bamboo bootstraps implementation synthesis with a single-core profiling
//! run: the instrumented executor records per-invocation cycle counts, the
//! exit each invocation took, and the number of parameter objects each
//! allocation site produced. This crate provides:
//!
//! - [`profile`] — the [`Profile`] data model and the
//!   [`ProfileCollector`] that executors feed;
//! - [`markov`] — the deterministic [`MarkovModel`] the scheduling
//!   simulator uses to predict exits, durations, and allocations without
//!   executing application code.
//!
//! # Examples
//!
//! ```
//! use bamboo_profile::{MarkovModel, Profile, ProfileCollector};
//! use bamboo_lang::builder::ProgramBuilder;
//! use bamboo_lang::ids::{ExitId, TaskId};
//! use bamboo_lang::spec::FlagExpr;
//!
//! let mut b: ProgramBuilder<()> = ProgramBuilder::new("demo");
//! let s = b.class("StartupObject", &["initialstate"]);
//! let init = b.flag(s, "initialstate");
//! b.task("startup")
//!     .param("s", s, FlagExpr::flag(init))
//!     .exit("", |e| e.set(0, init, false))
//!     .body(())
//!     .finish();
//! let spec = b.build().map_err(|e| e.to_string())?.spec;
//!
//! let mut collector = ProfileCollector::new(&spec, "original");
//! collector.record(TaskId::new(0), ExitId::new(0), 120, &[]);
//! let profile: Profile = collector.finish();
//!
//! let mut model = MarkovModel::new(&profile);
//! let prediction = model.predict(TaskId::new(0));
//! assert_eq!(prediction.cycles, 120);
//! # Ok::<(), String>(())
//! ```

pub mod markov;
pub mod profile;

pub use markov::{MarkovModel, Prediction};
pub use profile::{Cycles, ExitStats, Profile, ProfileCollector, TaskProfile};
