//! The deployment lifecycle API on real threads: build a native
//! fan-out/reduce program, profile + synthesize a layout, bundle it
//! into a [`DeploymentHandle`], and run the *same artifact* on the
//! virtual-time executor and on the threaded executor (with work
//! stealing and telemetry) — then hand the recorded telemetry to the
//! `bamboo-doctor` analyzer for a causal diagnosis of the observed
//! run.
//!
//! Run with: `cargo run --example threaded_deploy`

use bamboo::prelude::*;
use rand::SeedableRng;

fn build_program(n: i64) -> Compiler {
    let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("threaded-deploy");
    let s = b.class("StartupObject", &["initialstate"]);
    let w = b.class("Work", &["ready", "done"]);
    let acc = b.class("Acc", &["open", "closed"]);
    let init = b.flag(s, "initialstate");
    let ready = b.flag(w, "ready");
    let done = b.flag(w, "done");
    let open = b.flag(acc, "open");
    let closed = b.flag(acc, "closed");
    b.task("startup")
        .param("s", s, FlagExpr::flag(init))
        .alloc(w, &[(ready, true)], &[])
        .alloc(acc, &[(open, true)], &[])
        .exit("", |e| e.set(0, init, false))
        .body(body(move |ctx| {
            for i in 0..n {
                ctx.create(0, i);
            }
            ctx.create(1, (0i64, 0i64, n));
            ctx.charge(50);
            0
        }))
        .finish();
    b.task("work")
        .param("w", w, FlagExpr::flag(ready))
        .exit("", |e| e.set(0, ready, false).set(0, done, true))
        .body(body(|ctx| {
            let v = ctx.param_mut::<i64>(0);
            *v *= *v;
            ctx.charge(2_000);
            0
        }))
        .finish();
    b.task("reduce")
        .param("a", acc, FlagExpr::flag(open))
        .param("w", w, FlagExpr::flag(done))
        .exit("more", |e| e.set(1, done, false))
        .exit("finish", |e| {
            e.set(0, open, false)
                .set(0, closed, true)
                .set(1, done, false)
        })
        .body(body(|ctx| {
            let w = *ctx.param::<i64>(1);
            let a = ctx.param_mut::<(i64, i64, i64)>(0);
            a.0 += w;
            a.1 += 1;
            let finished = a.1 == a.2;
            ctx.charge(80);
            if finished {
                1
            } else {
                0
            }
        }))
        .finish();
    Compiler::from_native(b.build().expect("valid program"))
}

fn main() -> Result<(), Error> {
    let n = 64i64;
    let compiler = build_program(n);

    // Profile on one core, synthesize for eight.
    let (profile, single, ()) = compiler.profile_run(None, "deploy-demo", |_| ())?;
    let machine = MachineDescription::n_cores(8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);

    // One lifecycle handle; the virtual executor predicts over the same
    // deployment artifact before the threaded run consumes it.
    let handle = DeploymentHandle::deploy(&compiler, &plan);
    println!(
        "deployment: {} over {} cores",
        handle.planned_layout(),
        handle.deployment().core_count()
    );

    let mut virt = VirtualExecutor::over(handle.deployment(), &machine, ExecConfig::default());
    let predicted = virt.run(None)?;
    println!(
        "virtual:  {} invocations, {} cycles ({:.2}x over 1 core)",
        predicted.invocations,
        predicted.makespan,
        single.makespan as f64 / predicted.makespan as f64
    );

    let telemetry = Telemetry::enabled(handle.deployment().core_count());
    let deployment = handle.deployment().clone();
    let observed = handle
        .with_telemetry(telemetry.clone())
        .with_steal(StealPolicy::SameGroup)
        .run()?;
    println!(
        "threaded: {} invocations in {:?} ({} stolen, {} lock retries)",
        observed.invocations, observed.wall, observed.steals, observed.lock_retries
    );

    // Fallible result extraction through the unified error type.
    let acc_class = compiler
        .program
        .spec
        .class_by_name("Acc")
        .expect("declared above");
    let accs = observed.try_payloads_of::<(i64, i64, i64)>(acc_class)?;
    let expected: i64 = (0..n).map(|i| i * i).sum();
    println!("sum of squares 0..{n}: {} (expected {expected})", accs[0].0);
    assert_eq!(accs[0].0, expected);

    let report = telemetry.report();
    println!(
        "telemetry: {} dispatches, {} objects sent",
        report.metrics.counters["threaded.dispatches"],
        report.metrics.counters["threaded.bytes_sent"] / (16 * 8)
    );

    // Doctor pass: reconstruct the causal graph from the recorded
    // events, break each core's wall time down, attribute the observed
    // critical path, and rank findings against the virtual executor's
    // prediction of the same deployment.
    let mut virt = VirtualExecutor::over(
        &deployment,
        &machine,
        ExecConfig {
            collect_trace: true,
            ..ExecConfig::default()
        },
    );
    let trace = virt.run(None)?.trace.expect("trace requested");
    let diagnosis = bamboo::telemetry::analyze::diagnose(&report, Some(&trace));
    println!("\n{}", diagnosis.summary(Some(&compiler.program.spec)));
    Ok(())
}
