//! Tags: the image-save pipeline of the paper's §3.
//!
//! `startsave` creates a tag instance and binds it to both a `Drawing`
//! and its freshly created `Image`; a library-style `compress` task
//! transitions images to the compressed state; `finishsave` then demands
//! a Drawing and a *compressed Image carrying the same tag* — so each
//! drawing is always paired with its own image, even with many saves in
//! flight (the disambiguation problem tags exist to solve).
//!
//! Run with: `cargo run --example imagepipe`

use bamboo::{Compiler, ExecConfig, MachineDescription, SynthesisOptions};
use rand::SeedableRng;

const SOURCE: &str = r#"
class StartupObject { flag initialstate; }

class Drawing {
    flag saving;
    flag saved;
    int id;
    int pairedWith;
    Drawing(int id) { this.id = id; this.pairedWith = 0 - 1; }
}

class Image {
    flag uncompressed;
    flag compressed;
    int id;
    int sizeBefore;
    int sizeAfter;
    Image(int id, int size) { this.id = id; this.sizeBefore = size; }

    void compress() {
        this.sizeAfter = this.sizeBefore / 3 + 7;
    }
}

tagtype link;

task startup(StartupObject s in initialstate) {
    tag t0 = new tag(link);
    Drawing d0 = new Drawing(0){ saving := true, add t0 };
    Image i0 = new Image(0, 900){ uncompressed := true, add t0 };
    tag t1 = new tag(link);
    Drawing d1 = new Drawing(1){ saving := true, add t1 };
    Image i1 = new Image(1, 1200){ uncompressed := true, add t1 };
    tag t2 = new tag(link);
    Drawing d2 = new Drawing(2){ saving := true, add t2 };
    Image i2 = new Image(2, 600){ uncompressed := true, add t2 };
    taskexit(s: initialstate := false);
}

task compress(Image im in uncompressed) {
    im.compress();
    taskexit(im: uncompressed := false, compressed := true);
}

task finishsave(Drawing d in saving with link t, Image im in compressed with link t) {
    d.pairedWith = im.id;
    taskexit(d: saving := false, saved := true, clear t; im: compressed := false, clear t);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiler = Compiler::from_source("imagepipe", SOURCE)?;
    let finishsave = compiler
        .program
        .spec
        .task_by_name("finishsave")
        .expect("declared above");
    println!(
        "finishsave params share a tag: {} (so it may be replicated with tag-hash routing)",
        compiler
            .program
            .spec
            .task(finishsave)
            .all_params_share_tag()
    );

    let (profile, _, ()) = compiler.profile_run(None, "imagepipe", |_| ())?;
    let machine = MachineDescription::quad();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
    let report = exec.run(None)?;
    println!(
        "ran {} invocations on {} cores",
        report.invocations,
        machine.core_count()
    );

    let drawing_class = compiler
        .program
        .spec
        .class_by_name("Drawing")
        .expect("declared above");
    let heap = exec.interp_heap().expect("interpreted program");
    for obj in exec.store.live_of_class(drawing_class) {
        let r = match exec.store.get(obj).payload {
            bamboo::runtime::PayloadSlot::Interp(r) => r,
            _ => unreachable!(),
        };
        let id = heap.field(r, 0);
        let paired = heap.field(r, 1);
        println!("drawing {id} paired with image {paired}");
        assert_eq!(
            format!("{id}"),
            format!("{paired}"),
            "tag pairing must match ids"
        );
    }
    println!("every drawing got its own image — tags disambiguated the saves.");
    Ok(())
}
