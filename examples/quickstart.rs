//! Quickstart: the keyword-counting example of the paper's §2, end to
//! end — compile the Bamboo DSL source, run the analyses, profile on one
//! core, synthesize a quad-core implementation, and execute it.
//!
//! Run with: `cargo run --example quickstart`

use bamboo::prelude::*;
use rand::SeedableRng;

const SOURCE: &str = r#"
class StartupObject { flag initialstate; }

class Text {
    flag process;
    flag submit;
    String section;
    int count;

    Text(String section) { this.section = section; }

    void process() {
        String[] words = split(this.section, " ");
        int n = 0;
        for (int i = 0; i < len(words); i = i + 1) {
            if (words[i] == "bamboo") { n = n + 1; }
        }
        this.count = n;
    }
}

class Results {
    flag finished;
    int total;
    int merged;
    int expected;

    Results(int expected) { this.expected = expected; }

    boolean mergeResult(Text tp) {
        this.total = this.total + tp.count;
        this.merged = this.merged + 1;
        return this.merged == this.expected;
    }
}

task startup(StartupObject s in initialstate) {
    for (int i = 0; i < 8; i = i + 1) {
        Text tp = new Text("bamboo grows fast the bamboo panda eats bamboo shoots"){ process := true };
    }
    Results rp = new Results(8){ finished := false };
    taskexit(s: initialstate := false);
}

task processText(Text tp in process) {
    tp.process();
    taskexit(tp: process := false, submit := true);
}

task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
    boolean allprocessed = rp.mergeResult(tp);
    if (allprocessed) {
        taskexit(rp: finished := true; tp: submit := false);
    }
    taskexit(tp: submit := false);
}
"#;

fn main() -> Result<(), Error> {
    // 1. Compile: frontend + dependence analysis + disjointness analysis.
    let compiler = Compiler::from_source("keyword-count", SOURCE)?;
    println!("compiled `{}`:", compiler.program.spec.name);
    println!("  classes: {}", compiler.program.spec.classes.len());
    println!("  tasks:   {}", compiler.program.spec.tasks.len());
    println!(
        "  abstract states (CSTG nodes): {}",
        compiler.cstg.nodes.len()
    );
    for (i, plan) in compiler.locks.lock_plans.iter().enumerate() {
        println!(
            "  lock plan for `{}`: {} {}",
            compiler.program.spec.tasks[i].name,
            plan,
            if plan.has_sharing() {
                "(shared lock!)"
            } else {
                "(disjoint)"
            }
        );
    }

    // 2. Profile on a single core (this also runs the program for real).
    let (profile, single, ()) = compiler.profile_run(None, "quickstart", |_| ())?;
    println!(
        "\nsingle-core run: {} invocations, {} cycles",
        single.invocations, single.makespan
    );

    // 3. Synthesize an implementation for a quad-core machine.
    let machine = MachineDescription::quad();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    println!("\nsynthesized layout for {machine}:");
    print!(
        "{}",
        plan.layout.describe(&compiler.program.spec, &plan.graph)
    );

    // 4. Execute the synthesized implementation. The deployment bundles
    // (program, graph, layout, locks) into the one artifact both
    // executors consume.
    let deployment = compiler.deploy(&plan);
    let mut exec = VirtualExecutor::over(&deployment, &machine, ExecConfig::default());
    let parallel = exec.run(None)?;
    println!(
        "quad-core run: {} cycles — {:.2}x speedup",
        parallel.makespan,
        single.makespan as f64 / parallel.makespan as f64
    );

    // 5. Read the result out of the final Results object.
    let results_class = compiler
        .program
        .spec
        .class_by_name("Results")
        .expect("declared above");
    let objs = exec.store.live_of_class(results_class);
    let r = match exec.store.get(objs[0]).payload {
        bamboo::runtime::PayloadSlot::Interp(r) => r,
        _ => unreachable!("DSL programs hold interpreter references"),
    };
    let total = exec.interp_heap().expect("interpreted program").field(r, 0);
    println!("keyword count: {total} (expected 24)");
    Ok(())
}
