//! Pipelining: the MonteCarlo layout discovery of the paper's §5.4/§5.6.
//!
//! The authors were surprised to find that Bamboo synthesized a
//! *heterogeneous, pipelined* implementation of MonteCarlo: one core runs
//! the aggregation task concurrently with the simulation tasks on the
//! other cores, overlapping the two components. This example synthesizes
//! the benchmark on a small machine and shows exactly that structure in
//! the resulting layout, then quantifies the benefit against a layout
//! where aggregation shares a simulation core.
//!
//! Run with: `cargo run --release --example montecarlo_pipeline`

use bamboo::schedule::{simulate, SimOptions};
use bamboo::{CoreId, ExecConfig, MachineDescription, SynthesisOptions};
use bamboo_apps::{Benchmark, Scale};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = bamboo_apps::montecarlo::MonteCarlo;
    let compiler = bench.compiler(Scale::Small);
    let (profile, single, ()) = compiler.profile_run(None, "pipeline", |_| ())?;

    let machine = MachineDescription::n_cores(8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);

    println!("synthesized layout on {machine}:");
    print!(
        "{}",
        plan.layout.describe(&compiler.program.spec, &plan.graph)
    );

    // Where did aggregation land relative to the simulations?
    let spec = &compiler.program.spec;
    let aggregate = spec.task_by_name("aggregate").expect("montecarlo task");
    let run_sim = spec.task_by_name("runSimulation").expect("montecarlo task");
    let agg_group = plan.graph.group_of_task(aggregate).expect("deployed");
    let sim_group = plan.graph.group_of_task(run_sim).expect("deployed");
    let agg_core: CoreId = plan.layout.core_of(plan.layout.instances_of(agg_group)[0]);
    let sim_cores: Vec<usize> = plan
        .layout
        .instances_of(sim_group)
        .iter()
        .map(|i| plan.layout.core_of(*i).index())
        .collect();
    let dedicated = !sim_cores.contains(&agg_core.index());
    println!(
        "\naggregation runs on {agg_core}; simulations on cores {sim_cores:?}\n\
         pipelined (aggregation core dedicated): {dedicated}"
    );

    // Quantify: simulate the alternative where everything is spread
    // uniformly so aggregation competes with a simulation replica.
    let uniform = bamboo::schedule::spread_layout(&plan.graph, &plan.replication, 8);
    let uniform_est = simulate(
        spec,
        &plan.graph,
        &uniform,
        &profile,
        &machine,
        &SimOptions::default(),
    );
    println!(
        "\nmakespan with pipelined layout:  {:>10} cycles",
        plan.estimate.makespan
    );
    println!(
        "makespan with uniform layout:    {:>10} cycles",
        uniform_est.makespan
    );
    println!(
        "pipelining benefit: {:.1}%",
        (uniform_est.makespan as f64 / plan.estimate.makespan as f64 - 1.0) * 100.0
    );

    // And execute the winning layout for real.
    let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
    let parallel = exec.run(None)?;
    println!(
        "\nreal execution: {} cycles — {:.2}x speedup over one core; result verified: {}",
        parallel.makespan,
        single.makespan as f64 / parallel.makespan as f64,
        bench.parallel_checksum(&compiler, &exec) == bench.serial(Scale::Small).checksum
    );
    Ok(())
}
