//! Adaptive re-optimization — the paper's §7 ("Conclusion") extension:
//!
//! > "It is straightforward to modify the basic approach to support
//! > executables that periodically re-optimize themselves for the
//! > workloads they encounter in the field. [...] An executable would
//! > periodically profile itself and report the results to a system
//! > library that implements our optimization strategy. The library would
//! > then rerun the optimizations, generate a new layout, and update the
//! > executable's layout information."
//!
//! This example demonstrates exactly that loop: a program ships with a
//! naive layout, profiles itself *while running in the field*, re-runs
//! the synthesis from the field profile, and adopts the improved layout
//! for the next run — no recompilation, only layout data changes.
//!
//! Run with: `cargo run --release --example adaptive_reopt`

use bamboo::schedule::spread_layout;
use bamboo::{ExecConfig, MachineDescription, Replication, SynthesisOptions};
use bamboo_apps::{Benchmark, Scale};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = bamboo_apps::montecarlo::MonteCarlo;
    let compiler = bench.compiler(Scale::Small);
    let machine = MachineDescription::n_cores(8);

    // Generation 0: the executable ships with a naive layout — every
    // group replicated once and dealt uniformly, no profile knowledge.
    let graph = compiler.bootstrap_graph();
    let naive_repl = Replication::serial(&graph);
    let naive_layout = spread_layout(&graph, &naive_repl, machine.core_count());

    // Field run: execute under the naive layout *with profiling on*.
    let config = ExecConfig {
        profile_input: Some("field".to_string()),
        ..ExecConfig::default()
    };
    let mut exec = compiler.executor(&graph, &naive_layout, &machine, config);
    let mut report0 = exec.run(None)?;
    let field_profile = report0.profile.take().expect("profiling was on");
    println!(
        "generation 0 (naive layout):      {:>9} cycles, {} invocations",
        report0.makespan, report0.invocations
    );

    // Re-optimization: the "system library" step — rerun synthesis from
    // the field profile and produce a new layout.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let plan = compiler.synthesize(
        &field_profile,
        &machine,
        &SynthesisOptions::default(),
        &mut rng,
    );
    println!(
        "re-optimized layout (estimated):  {:>9} cycles, {} DSA simulations",
        plan.estimate.makespan, plan.stats.simulations
    );

    // Generation 1: same executable, new layout data.
    let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
    let report1 = exec.run(None)?;
    let verified = bench.parallel_checksum(&compiler, &exec) == bench.serial(Scale::Small).checksum;
    println!(
        "generation 1 (field-optimized):   {:>9} cycles — {:.2}x faster, verified: {verified}",
        report1.makespan,
        report0.makespan as f64 / report1.makespan as f64
    );
    assert!(report1.makespan < report0.makespan);

    // The loop can continue: generation 1 can profile itself too, and a
    // second re-optimization converges (no further improvement expected
    // on a stable workload).
    let config = ExecConfig {
        profile_input: Some("field-gen1".to_string()),
        ..ExecConfig::default()
    };
    let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, config);
    let mut report1p = exec.run(None)?;
    let profile1 = report1p.profile.take().expect("profiling was on");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let plan2 = compiler.synthesize(&profile1, &machine, &SynthesisOptions::default(), &mut rng);
    println!(
        "generation 2 (re-re-optimized):   {:>9} cycles estimated — converged: {}",
        plan2.estimate.makespan,
        plan2.estimate.makespan as f64 >= report1.makespan as f64 * 0.95
    );
    Ok(())
}
