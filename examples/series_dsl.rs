//! The Series benchmark written **in the Bamboo DSL** — the same Fourier
//! coefficient computation the native `bamboo-apps` version performs, but
//! expressed in the paper's language and executed by the interpreter
//! through the full pipeline (compile → analyze → profile → synthesize →
//! run on virtual cores). The results are compared against the native
//! Rust kernel bit-for-bit: interpreter arithmetic is ordinary f64, so
//! the same sums produce the same bits.
//!
//! Run with: `cargo run --release --example series_dsl`

use bamboo::{Compiler, ExecConfig, MachineDescription, SynthesisOptions};
use bamboo_apps::series::fourier_coefficients;
use rand::SeedableRng;

const CHUNKS: usize = 8;
const COEFFS_PER_CHUNK: usize = 2;
const POINTS: usize = 100;

fn source() -> String {
    format!(
        r#"
class StartupObject {{ flag initialstate; }}

class Chunk {{
    flag ready;
    flag done;
    int first;
    float[] a;
    float[] b;

    Chunk(int first) {{ this.first = first; }}

    void compute() {{
        int count = {COEFFS_PER_CHUNK};
        int points = {POINTS};
        float pi = 3.141592653589793;
        float dx = 2.0 / itof(points);
        this.a = new float[count];
        this.b = new float[count];
        for (int j = 0; j < count; j = j + 1) {{
            int k = this.first + j;
            float ak = 0.0;
            float bk = 0.0;
            for (int i = 0; i <= points; i = i + 1) {{
                float x = itof(i) * dx;
                float w = 1.0;
                if (i == 0) {{ w = 0.5; }}
                if (i == points) {{ w = 0.5; }}
                float f = pow(x + 1.0, x);
                if (k == 0) {{
                    ak = ak + w * f * dx;
                }} else {{
                    float phase = pi * itof(k) * x;
                    ak = ak + w * f * cos(phase) * dx;
                    bk = bk + w * f * sin(phase) * dx;
                }}
            }}
            this.a[j] = ak / 2.0;
            this.b[j] = bk / 2.0;
        }}
    }}
}}

class Result {{
    flag collecting;
    flag finished;
    float[] a;
    float[] b;
    int merged;
    int expected;

    Result(int total, int expected) {{
        this.a = new float[total];
        this.b = new float[total];
        this.expected = expected;
    }}

    boolean merge(Chunk c) {{
        for (int j = 0; j < len(c.a); j = j + 1) {{
            this.a[c.first + j] = c.a[j];
            this.b[c.first + j] = c.b[j];
        }}
        this.merged = this.merged + 1;
        return this.merged == this.expected;
    }}
}}

task startup(StartupObject s in initialstate) {{
    int chunks = {CHUNKS};
    int per = {COEFFS_PER_CHUNK};
    for (int i = 0; i < chunks; i = i + 1) {{
        Chunk c = new Chunk(i * per){{ ready := true }};
    }}
    Result r = new Result(chunks * per, chunks){{ collecting := true }};
    taskexit(s: initialstate := false);
}}

task compute(Chunk c in ready) {{
    c.compute();
    taskexit(c: ready := false, done := true);
}}

task merge(Result r in collecting, Chunk c in done) {{
    boolean all = r.merge(c);
    if (all) {{ taskexit(r: collecting := false, finished := true; c: done := false); }}
    taskexit(c: done := false);
}}
"#
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiler = Compiler::from_source("series-dsl", &source())?;
    let (profile, single, ()) = compiler.profile_run(None, "dsl", |_| ())?;
    println!(
        "single-core: {} invocations, {} interpreter-charged cycles",
        single.invocations, single.makespan
    );

    let machine = MachineDescription::n_cores(8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
    let parallel = exec.run(None)?;
    println!(
        "8-core: {} cycles — {:.2}x speedup",
        parallel.makespan,
        single.makespan as f64 / parallel.makespan as f64
    );

    // Extract the DSL-computed coefficients and compare against the
    // native Rust kernel, bit for bit.
    let result_class = compiler
        .program
        .spec
        .class_by_name("Result")
        .expect("declared");
    let objs = exec.store.live_of_class(result_class);
    let r = match exec.store.get(objs[0]).payload {
        bamboo::runtime::PayloadSlot::Interp(r) => r,
        _ => unreachable!(),
    };
    let heap = exec.interp_heap().expect("interpreted");
    let a_arr = match heap.field(r, 0) {
        bamboo::lang::interp::Value::Ref(arr) => *arr,
        other => panic!("unexpected {other:?}"),
    };
    let native = fourier_coefficients(0, CHUNKS * COEFFS_PER_CHUNK, POINTS);
    let mut exact = 0;
    for (k, (na, _)) in native.iter().enumerate() {
        let dsl_a = match heap.array(a_arr)[k] {
            bamboo::lang::interp::Value::Float(v) => v,
            ref other => panic!("unexpected {other:?}"),
        };
        if dsl_a.to_bits() == na.to_bits() {
            exact += 1;
        }
        if k < 3 {
            println!("a[{k}]  dsl={dsl_a:.12}  native={na:.12}");
        }
    }
    println!(
        "{exact}/{} coefficients bit-identical between DSL and native Rust",
        native.len()
    );
    assert_eq!(
        exact,
        native.len(),
        "interpreter float math must match native"
    );
    Ok(())
}
