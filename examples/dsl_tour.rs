//! A tour of the Bamboo DSL: guards with `and`/`or`/`!`, methods,
//! arrays, strings, multiple exits, and the analyses' view of the
//! program (ASTGs, CSTG, lock plans).
//!
//! The program models a tiny order-processing workflow: orders are
//! validated, then either fulfilled or rejected; an auditor object
//! tallies both outcomes and a ledger keeps a running total that the
//! fulfill task updates through a method call.
//!
//! Run with: `cargo run --example dsl_tour`

use bamboo::Compiler;

const SOURCE: &str = r#"
class StartupObject { flag initialstate; }

class Order {
    flag fresh;
    flag valid;
    flag invalid;
    flag done;
    int amount;
    String customer;

    Order(int amount, String customer) {
        this.amount = amount;
        this.customer = customer;
    }

    boolean check() {
        // Orders over 1000 or from empty customers are rejected.
        if (this.amount > 1000) { return false; }
        if (len(this.customer) == 0) { return false; }
        return true;
    }
}

class Ledger {
    flag open;
    int total;
    int fulfilled;
    int rejected;
    int expected;
    Ledger(int expected) { this.expected = expected; }

    boolean recordFulfilled(Order o) {
        this.total = this.total + o.amount;
        this.fulfilled = this.fulfilled + 1;
        return this.fulfilled + this.rejected == this.expected;
    }

    boolean recordRejected() {
        this.rejected = this.rejected + 1;
        return this.fulfilled + this.rejected == this.expected;
    }
}

task startup(StartupObject s in initialstate) {
    int[] amounts = new int[6];
    amounts[0] = 120; amounts[1] = 4500; amounts[2] = 80;
    amounts[3] = 990; amounts[4] = 10;   amounts[5] = 2000;
    for (int i = 0; i < len(amounts); i = i + 1) {
        String name = "customer-" + itoa(i);
        Order o = new Order(amounts[i], name){ fresh := true };
    }
    Ledger led = new Ledger(6){ open := true };
    taskexit(s: initialstate := false);
}

task validate(Order o in fresh) {
    boolean ok = o.check();
    if (ok) {
        taskexit(o: fresh := false, valid := true);
    }
    taskexit(o: fresh := false, invalid := true);
}

// The guard mixes `or` with `!`: any settled-but-unrecorded order.
task record(Ledger led in open, Order o in (valid or invalid) and !done) {
    boolean closing = false;
    if (o.amount <= 1000) {
        closing = led.recordFulfilled(o);
    } else {
        closing = led.recordRejected();
    }
    if (closing) {
        taskexit(led: open := false; o: done := true, valid := false, invalid := false);
    }
    taskexit(o: done := true, valid := false, invalid := false);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiler = Compiler::from_source("dsl-tour", SOURCE)?;
    let spec = &compiler.program.spec;

    println!("== what the analyses see ==");
    for (class_id, class) in spec.classes_enumerated() {
        let astg = compiler.dependence.astg(class_id);
        println!(
            "class {:<14} flags={:<28} abstract states={} transitions={}",
            class.name,
            format!("{:?}", class.flags),
            astg.states.len(),
            astg.edges.len()
        );
    }
    println!(
        "CSTG: {} nodes, {} task edges, {} new-object edges",
        compiler.cstg.nodes.len(),
        compiler.cstg.task_edges.len(),
        compiler.cstg.new_edges.len()
    );
    for (i, plan) in compiler.locks.lock_plans.iter().enumerate() {
        println!("lock plan `{}`: {}", spec.tasks[i].name, plan);
    }

    println!("\n== execution ==");
    let (profile, report, ()) = compiler.profile_run(None, "tour", |_| ())?;
    println!("{}", profile.summary(spec));
    println!("total invocations: {}", report.invocations);

    // Inspect the ledger.
    let (_, _, (total, fulfilled, rejected)) = compiler.profile_run(None, "tour2", |exec| {
        let ledger = spec.class_by_name("Ledger").expect("declared above");
        let obj = exec.store.live_of_class(ledger)[0];
        let r = match exec.store.get(obj).payload {
            bamboo::runtime::PayloadSlot::Interp(r) => r,
            _ => unreachable!(),
        };
        let heap = exec.interp_heap().expect("interpreted");
        (
            format!("{}", heap.field(r, 0)),
            format!("{}", heap.field(r, 1)),
            format!("{}", heap.field(r, 2)),
        )
    })?;
    println!("ledger: total={total} fulfilled={fulfilled} rejected={rejected}");
    assert_eq!(total, "1200");
    assert_eq!(fulfilled, "4");
    assert_eq!(rejected, "2");
    println!("(120 + 80 + 990 + 10 = 1200 fulfilled; 4500 and 2000 rejected)");
    Ok(())
}
