//! A resident deployment under open-loop traffic: build a native
//! fan-out/reduce program, synthesize a layout for eight cores, keep
//! the deployment resident through the [`DeploymentHandle`] lifecycle,
//! and feed it bursty arrivals — each arrival becomes an independent
//! *request* whose completion the request ledger detects exactly (no
//! global quiescence). The adaptive re-layout loop is armed: the run
//! re-estimates its Markov model live and hot-migrates groups when the
//! DSA finds a better layout. Prints the admit→complete latency
//! distribution, the layout epoch served last, and the `serving.*`
//! view reconstructed from the telemetry rings.
//!
//! Run with: `cargo run --example serving_deploy`

use bamboo::prelude::*;
use bamboo::telemetry::analyze::ServingStats;
use rand::SeedableRng;

/// Squares `n` numbers per request and reduces them to a sum.
fn build_program(n: i64) -> Compiler {
    let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("serving-deploy");
    let s = b.class("StartupObject", &["initialstate"]);
    let w = b.class("Work", &["ready", "done"]);
    let acc = b.class("Acc", &["open", "closed"]);
    let init = b.flag(s, "initialstate");
    let ready = b.flag(w, "ready");
    let done = b.flag(w, "done");
    let open = b.flag(acc, "open");
    let closed = b.flag(acc, "closed");
    b.task("startup")
        .param("s", s, FlagExpr::flag(init))
        .alloc(w, &[(ready, true)], &[])
        .alloc(acc, &[(open, true)], &[])
        .exit("", |e| e.set(0, init, false))
        .body(body(move |ctx| {
            for i in 0..n {
                ctx.create(0, i);
            }
            ctx.create(1, (0i64, 0i64, n));
            ctx.charge(50);
            0
        }))
        .finish();
    b.task("work")
        .param("w", w, FlagExpr::flag(ready))
        .exit("", |e| e.set(0, ready, false).set(0, done, true))
        .body(body(|ctx| {
            let v = ctx.param_mut::<i64>(0);
            *v *= *v;
            ctx.charge(500);
            0
        }))
        .finish();
    b.task("reduce")
        .param("a", acc, FlagExpr::flag(open))
        .param("w", w, FlagExpr::flag(done))
        .exit("more", |e| e.set(1, done, false))
        .exit("finish", |e| {
            e.set(0, open, false)
                .set(0, closed, true)
                .set(1, done, false)
        })
        .body(body(|ctx| {
            let w = *ctx.param::<i64>(1);
            let a = ctx.param_mut::<(i64, i64, i64)>(0);
            a.0 += w;
            a.1 += 1;
            let finished = a.1 == a.2;
            ctx.charge(30);
            if finished {
                1
            } else {
                0
            }
        }))
        .finish();
    Compiler::from_native(b.build().expect("valid program"))
}

fn main() -> Result<(), Error> {
    let compiler = build_program(16);

    // Profile on one core, synthesize for eight, bundle the artifact.
    let (profile, _, ()) = compiler.profile_run(None, "serving-demo", |_| ())?;
    let machine = MachineDescription::n_cores(8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    let handle = DeploymentHandle::deploy(&compiler, &plan);
    println!(
        "deployment: {} over {} cores, kept resident",
        handle.planned_layout(),
        handle.deployment().core_count()
    );

    // Workers plus the driver's pseudo-core, so the serving events land
    // in the same rings as the executor's.
    let telemetry = Telemetry::enabled(handle.deployment().core_count() + 1);

    // A Markov-modulated arrival process: calm stretches around 300
    // req/s punctuated by 3000 req/s bursts.
    let mut arrivals = Bursty::new(300.0, 3_000.0, 0.15, 7);
    let total = 48;

    let mut session = handle
        .with_telemetry(telemetry.clone())
        // Arm the doctor→DSA loop: re-estimate the model from live
        // telemetry and hot-migrate groups when a better layout clears
        // the hysteresis threshold.
        .with_adapt(AdaptPolicy::new(machine.clone()))
        .serve(ServingOptions::new())?;
    session.serve(&mut arrivals, total, |request| Box::new(request))?;
    let last = session.snapshot();
    let report = session.stop()?;
    println!("layout:   served last on {last}");

    println!("served:   {}", report.latency_summary());
    println!(
        "latency:  p50 {}µs  p99 {}µs  p999 {}µs  max {}µs",
        report.latency_us.p50(),
        report.latency_us.p99(),
        report.latency_us.p999(),
        report.latency_us.max(),
    );
    let first = report.completions.first().expect("at least one request");
    println!(
        "ledger:   {} completions, {} invocations each (request {} tallied {})",
        report.completions.len(),
        first.invocations,
        first.request,
        first.invocations,
    );
    assert_eq!(report.completed, total as u64);
    assert_eq!(report.shed, 0);
    assert_eq!(report.executor.router_shed, 0);

    // The same story, reconstructed purely from the recorded
    // `serving.*` events (ring timestamps are nanoseconds).
    let stats = ServingStats::from_report(&telemetry.report());
    println!(
        "rings:    {} arrivals, {} admitted, {} shed, {} completed, p99 {}µs",
        stats.arrivals,
        stats.admitted,
        stats.shed,
        stats.completed,
        stats.latency.p99() / 1_000,
    );
    Ok(())
}
